// Tests of the paper's §7 extensions and the practical additions this
// library ships beyond the core reproduction: skip-till-any-match,
// time-constrained detection, insert-position continuation, the pairwise
// last-completion statistic, and policy persistence safety.

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/pair_extraction.h"
#include "index/sequence_index.h"
#include "query/query_processor.h"
#include "storage/database.h"

namespace seqdet {
namespace {

using eventlog::ActivityId;
using eventlog::EventLog;
using eventlog::Timestamp;
using eventlog::Trace;
using index::EventTypePair;
using index::IndexOptions;
using index::PairRow;
using index::Policy;
using index::SequenceIndex;
using query::ContinuationProposal;
using query::DetectionConstraints;
using query::Pattern;
using query::PatternMatch;
using query::QueryProcessor;

std::unique_ptr<storage::Database> InMemoryDb() {
  storage::DbOptions options;
  options.table.in_memory = true;
  options.table.use_wal = false;
  return std::move(storage::Database::Open("", options)).value();
}

struct Fixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<SequenceIndex> index;
  std::unique_ptr<QueryProcessor> qp;

  explicit Fixture(const EventLog& log,
                   Policy policy = Policy::kSkipTillAnyMatch) {
    db = InMemoryDb();
    IndexOptions options;
    options.policy = policy;
    options.num_threads = 1;
    index = std::move(SequenceIndex::Open(db.get(), options)).value();
    auto stats = index->Update(log);
    EXPECT_TRUE(stats.ok()) << stats.status();
    qp = std::make_unique<QueryProcessor>(index.get());
  }
};

EventLog Letters(const std::vector<std::pair<int, std::string>>& traces) {
  EventLog log;
  for (const auto& [id, s] : traces) {
    int ts = 1;
    for (char c : s) log.Append(id, std::string(1, c), ts++);
  }
  log.SortAllTraces();
  return log;
}

Pattern NamedPattern(const Fixture& f, const std::string& letters) {
  std::vector<std::string> names;
  for (char c : letters) names.emplace_back(1, c);
  auto p = Pattern::FromNames(f.index->dictionary(), names);
  EXPECT_TRUE(p.ok()) << p.status();
  return *p;
}

// ---------------------------------------------------------------------------
// Skip-till-any-match
// ---------------------------------------------------------------------------

TEST(StamExtractionTest, EmitsEveryOrderedPair) {
  Trace trace{1, {{0, 1}, {1, 2}, {0, 3}}};
  std::vector<PairRow> rows;
  index::ExtractStamPairs(trace, &rows);
  // (A,B,1,2), (A,A,1,3), (B,A,2,3).
  EXPECT_EQ(rows.size(), 3u);
}

TEST(StamExtractionTest, PaperExampleCounts) {
  // Trace of Table 3: <A1 A2 B3 A4 B5 A6>; STAM emits all C(6,2) = 15
  // ordered pairs.
  Trace trace{1, {{0, 1}, {0, 2}, {1, 3}, {0, 4}, {1, 5}, {0, 6}}};
  std::vector<PairRow> rows;
  index::ExtractStamPairs(trace, &rows);
  EXPECT_EQ(rows.size(), 15u);
}

// Brute-force reference: every strictly increasing position assignment.
size_t CountAllSubsequenceOccurrences(const Trace& trace,
                                      const std::vector<ActivityId>& pattern) {
  // DP over positions: ways[j] = number of ways to match pattern prefix j.
  std::vector<size_t> ways(pattern.size() + 1, 0);
  ways[0] = 1;
  for (const auto& e : trace.events) {
    for (size_t j = pattern.size(); j >= 1; --j) {
      if (pattern[j - 1] == e.activity) ways[j] += ways[j - 1];
    }
  }
  return ways[pattern.size()];
}

TEST(StamDetectionTest, FindsAllOverlappingOccurrences) {
  // §2.1: in <AAABAACB> the any-match policy also finds e.g. positions
  // (1,3,8); detection over STAM pairs must count every occurrence.
  EventLog log = Letters({{1, "AAABAACB"}});
  Fixture f(log);
  Pattern pattern = NamedPattern(f, "AAB");
  auto matches = f.qp->Detect(pattern);
  ASSERT_TRUE(matches.ok());
  size_t expected = CountAllSubsequenceOccurrences(
      *log.FindTrace(1), pattern.activities);
  EXPECT_EQ(matches->size(), expected);
  EXPECT_GT(expected, 2u);  // strictly more than STNM's two
}

TEST(StamDetectionTest, MatchesBruteForceOnRandomTraces) {
  Rng rng(77);
  for (int round = 0; round < 15; ++round) {
    EventLog log;
    size_t n = 5 + rng.NextBounded(20);
    for (size_t i = 0; i < n; ++i) {
      log.Append(1, std::string(1, static_cast<char>('A' + rng.NextBounded(3))),
                 static_cast<Timestamp>(i + 1));
    }
    log.SortAllTraces();
    Fixture f(log);
    for (size_t len : {size_t{2}, size_t{3}, size_t{4}}) {
      std::vector<ActivityId> ids;
      std::vector<std::string> names;
      for (size_t i = 0; i < len; ++i) {
        char c = static_cast<char>('A' + rng.NextBounded(3));
        names.emplace_back(1, c);
      }
      auto pattern = Pattern::FromNames(f.index->dictionary(), names);
      if (!pattern.ok()) continue;  // letter absent from this log
      auto matches = f.qp->Detect(*pattern);
      ASSERT_TRUE(matches.ok());
      size_t expected = CountAllSubsequenceOccurrences(
          log.traces()[0], pattern->activities);
      EXPECT_EQ(matches->size(), expected)
          << "round " << round << " len " << len;
    }
  }
}

TEST(StamDetectionTest, TripleRepeatDetectable) {
  // Under STNM the X,X,X pattern is undetectable by Algorithm 2 (see
  // DESIGN.md); under skip-till-any-match it must be found.
  EventLog log = Letters({{1, "AAA"}});
  Fixture f(log);
  auto matches = f.qp->Detect(NamedPattern(f, "AAA"));
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
}

TEST(StamIncrementalTest, BatchesDoNotDuplicate) {
  EventLog batch1 = Letters({{1, "AB"}});
  EventLog batch2;
  batch2.Append(1, "A", 3);
  batch2.Append(1, "B", 4);
  batch2.SortAllTraces();

  auto db = InMemoryDb();
  IndexOptions options;
  options.policy = Policy::kSkipTillAnyMatch;
  options.num_threads = 1;
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  ASSERT_TRUE(index->Update(batch1).ok());
  ASSERT_TRUE(index->Update(batch2).ok());
  // Full trace A1 B2 A3 B4: (A,B) pairs: (1,2),(1,4),(3,4) = 3 postings.
  auto ab = index->GetPairPostings(EventTypePair{
      index->dictionary().Lookup("A"), index->dictionary().Lookup("B")});
  ASSERT_TRUE(ab.ok());
  EXPECT_EQ(ab->size(), 3u);
  // Re-sending everything adds nothing.
  EventLog all = Letters({{1, "AB"}});
  all.Append(1, "A", 3);
  all.Append(1, "B", 4);
  all.SortAllTraces();
  auto stats = index->Update(all);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pairs_indexed, 0u);
}

// ---------------------------------------------------------------------------
// Detection constraints
// ---------------------------------------------------------------------------

TEST(DetectionConstraintsTest, MaxGapFilters) {
  EventLog log;
  log.Append(1, "A", 1);
  log.Append(1, "B", 100);  // slow
  log.Append(2, "A", 1);
  log.Append(2, "B", 3);  // fast
  log.SortAllTraces();
  Fixture f(log, Policy::kSkipTillNextMatch);
  Pattern pattern = NamedPattern(f, "AB");
  DetectionConstraints constraints;
  constraints.max_gap = 10;
  auto matches = f.qp->Detect(pattern, constraints);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].trace, 2u);
}

TEST(DetectionConstraintsTest, MaxSpanFilters) {
  EventLog log = Letters({{1, "ABC"}});       // span 2
  log.Append(2, "A", 1);
  log.Append(2, "B", 2);
  log.Append(2, "C", 500);  // span 499
  log.SortAllTraces();
  Fixture f(log, Policy::kSkipTillNextMatch);
  DetectionConstraints constraints;
  constraints.max_span = 100;
  auto matches = f.qp->Detect(NamedPattern(f, "ABC"), constraints);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].trace, 1u);
}

TEST(DetectionConstraintsTest, UnconstrainedEqualsDefault) {
  EventLog log = Letters({{1, "ABAB"}, {2, "AABB"}});
  Fixture f(log, Policy::kSkipTillNextMatch);
  Pattern pattern = NamedPattern(f, "AB");
  auto plain = f.qp->Detect(pattern);
  auto constrained = f.qp->Detect(pattern, DetectionConstraints{});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(constrained.ok());
  EXPECT_EQ(*plain, *constrained);
}

TEST(DetectionConstraintsTest, GapBoundaryIsInclusive) {
  // Both bounds are inclusive: a gap (or span) exactly equal to the
  // constraint passes; one tick over fails. This is the normative boundary
  // semantics shared with `within` / `gap <=` in extended patterns (see
  // query/pattern.h).
  EventLog log;
  log.Append(1, "A", 10);
  log.Append(1, "B", 17);  // gap exactly 7
  log.SortAllTraces();
  Fixture f(log, Policy::kSkipTillNextMatch);
  Pattern pattern = NamedPattern(f, "AB");
  DetectionConstraints at;
  at.max_gap = 7;
  auto kept = f.qp->Detect(pattern, at);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->size(), 1u);
  DetectionConstraints under;
  under.max_gap = 6;
  auto dropped = f.qp->Detect(pattern, under);
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(dropped->empty());
}

TEST(DetectionConstraintsTest, SpanBoundaryIsInclusive) {
  EventLog log;
  log.Append(1, "A", 1);
  log.Append(1, "B", 5);
  log.Append(1, "C", 13);  // span exactly 12
  log.SortAllTraces();
  Fixture f(log, Policy::kSkipTillNextMatch);
  Pattern pattern = NamedPattern(f, "ABC");
  DetectionConstraints at;
  at.max_span = 12;
  auto kept = f.qp->Detect(pattern, at);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->size(), 1u);
  DetectionConstraints under;
  under.max_span = 11;
  auto dropped = f.qp->Detect(pattern, under);
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(dropped->empty());
}

TEST(DetectionConstraintsTest, ZeroGapIsABoundNotUnset) {
  // max_gap = 0 is a real (inclusive) bound, not "no constraint". Indexed
  // pairs always advance time (the extractors require strictly increasing
  // timestamps), so every gap is >= 1 and a zero bound drops everything —
  // while the default constraint keeps it all.
  EventLog log;
  log.Append(1, "A", 4);
  log.Append(1, "B", 5);
  log.SortAllTraces();
  Fixture f(log, Policy::kSkipTillNextMatch);
  Pattern pattern = NamedPattern(f, "AB");
  auto unconstrained = f.qp->Detect(pattern);
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_EQ(unconstrained->size(), 1u);
  DetectionConstraints constraints;
  constraints.max_gap = 0;
  auto bounded = f.qp->Detect(pattern, constraints);
  ASSERT_TRUE(bounded.ok());
  EXPECT_TRUE(bounded->empty());
}

// ---------------------------------------------------------------------------
// Insert-position continuation (§7)
// ---------------------------------------------------------------------------

TEST(InsertContinuationTest, ProposesMiddleEvent) {
  // A ... C traces where the middle is usually B, rarely D.
  EventLog log;
  for (int t = 0; t < 5; ++t) {
    log.Append(t, "A", 1);
    log.Append(t, t < 4 ? "B" : "D", 2);
    log.Append(t, "C", 3);
  }
  log.SortAllTraces();
  Fixture f(log, Policy::kSkipTillNextMatch);
  Pattern pattern = NamedPattern(f, "AC");
  auto proposals = f.qp->ContinueInsertAccurate(pattern, 1);
  ASSERT_TRUE(proposals.ok());
  ASSERT_EQ(proposals->size(), 2u);
  const auto& dict = f.index->dictionary();
  EXPECT_EQ(dict.Name((*proposals)[0].activity), "B");
  EXPECT_EQ((*proposals)[0].total_completions, 4u);
  EXPECT_EQ(dict.Name((*proposals)[1].activity), "D");
  EXPECT_EQ((*proposals)[1].total_completions, 1u);
}

TEST(InsertContinuationTest, GapAtEndEqualsAppendContinuation) {
  EventLog log = Letters({{1, "ABC"}, {2, "ABD"}});
  Fixture f(log, Policy::kSkipTillNextMatch);
  Pattern pattern = NamedPattern(f, "AB");
  auto append = f.qp->ContinueAccurate(pattern);
  auto insert = f.qp->ContinueInsertAccurate(pattern, pattern.size());
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(insert.ok());
  ASSERT_EQ(append->size(), insert->size());
  for (size_t i = 0; i < append->size(); ++i) {
    EXPECT_EQ((*append)[i].activity, (*insert)[i].activity);
    EXPECT_EQ((*append)[i].total_completions, (*insert)[i].total_completions);
  }
}

TEST(InsertContinuationTest, PrependProposesPredecessors) {
  EventLog log = Letters({{1, "XB"}, {2, "XB"}, {3, "YB"}});
  Fixture f(log, Policy::kSkipTillNextMatch);
  Pattern pattern = NamedPattern(f, "B");
  auto proposals = f.qp->ContinueInsertFast(pattern, 0);
  ASSERT_TRUE(proposals.ok());
  ASSERT_EQ(proposals->size(), 2u);
  EXPECT_EQ(f.index->dictionary().Name((*proposals)[0].activity), "X");
  EXPECT_EQ((*proposals)[0].total_completions, 2u);
}

TEST(InsertContinuationTest, FastBoundsAccurate) {
  Rng rng(31);
  EventLog log;
  for (size_t t = 0; t < 20; ++t) {
    for (size_t i = 0; i < 15; ++i) {
      log.Append(t, std::string(1, static_cast<char>('A' + rng.NextBounded(4))),
                 static_cast<Timestamp>(i + 1));
    }
  }
  log.SortAllTraces();
  Fixture f(log, Policy::kSkipTillNextMatch);
  Pattern pattern = NamedPattern(f, "AB");
  auto fast = f.qp->ContinueInsertFast(pattern, 1);
  auto accurate = f.qp->ContinueInsertAccurate(pattern, 1);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(accurate.ok());
  for (const auto& a : *accurate) {
    auto it = std::find_if(fast->begin(), fast->end(),
                           [&](const ContinuationProposal& p) {
                             return p.activity == a.activity;
                           });
    ASSERT_NE(it, fast->end());
    EXPECT_GE(it->total_completions, a.total_completions);
  }
}

TEST(InsertContinuationTest, BadGapIndexRejected) {
  EventLog log = Letters({{1, "AB"}});
  Fixture f(log, Policy::kSkipTillNextMatch);
  EXPECT_TRUE(f.qp->ContinueInsertFast(NamedPattern(f, "AB"), 5)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      f.qp->ContinueInsertAccurate(Pattern(), 0).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Statistics last-completion
// ---------------------------------------------------------------------------

TEST(StatisticsLastCompletionTest, ReportsNewestAcrossTraces) {
  EventLog log;
  log.Append(1, "A", 1);
  log.Append(1, "B", 5);
  log.Append(2, "A", 10);
  log.Append(2, "B", 42);
  log.SortAllTraces();
  Fixture f(log, Policy::kSkipTillNextMatch);
  query::StatisticsOptions options;
  options.include_last_completion = true;
  auto stats = f.qp->Statistics(NamedPattern(f, "AB"), options);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->pairs.size(), 1u);
  ASSERT_TRUE(stats->pairs[0].last_completion.has_value());
  EXPECT_EQ(*stats->pairs[0].last_completion, 42);
}

TEST(StatisticsLastCompletionTest, AbsentPairHasNone) {
  EventLog log = Letters({{1, "AB"}});
  Fixture f(log, Policy::kSkipTillNextMatch);
  query::StatisticsOptions options;
  options.include_last_completion = true;
  auto stats = f.qp->Statistics(NamedPattern(f, "BA"), options);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->pairs[0].last_completion.has_value());
}

// ---------------------------------------------------------------------------
// Policy persistence
// ---------------------------------------------------------------------------

TEST(PolicyPersistenceTest, MismatchedReopenRejected) {
  namespace fs = std::filesystem;
  auto dir = fs::temp_directory_path() /
             ("seqdet_policy_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    auto db = storage::Database::Open(dir.string());
    IndexOptions options;
    options.policy = Policy::kStrictContiguity;
    auto index = SequenceIndex::Open(db->get(), options);
    ASSERT_TRUE(index.ok()) << index.status();
    ASSERT_TRUE((*index)->Flush().ok());
  }
  {
    auto db = storage::Database::Open(dir.string());
    IndexOptions options;
    options.policy = Policy::kSkipTillNextMatch;
    auto index = SequenceIndex::Open(db->get(), options);
    ASSERT_FALSE(index.ok());
    EXPECT_TRUE(index.status().IsInvalidArgument());
  }
  {
    auto db = storage::Database::Open(dir.string());
    IndexOptions options;
    options.policy = Policy::kStrictContiguity;
    EXPECT_TRUE(SequenceIndex::Open(db->get(), options).ok());
  }
  fs::remove_all(dir);
}

TEST(PolicyNamesTest, ParseRoundTrip) {
  for (Policy p : {Policy::kStrictContiguity, Policy::kSkipTillNextMatch,
                   Policy::kSkipTillAnyMatch}) {
    Policy parsed;
    ASSERT_TRUE(index::ParsePolicyName(index::PolicyName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  Policy parsed;
  EXPECT_TRUE(index::ParsePolicyName("stnm", &parsed));
  EXPECT_EQ(parsed, Policy::kSkipTillNextMatch);
  EXPECT_FALSE(index::ParsePolicyName("bogus", &parsed));
}

}  // namespace
}  // namespace seqdet
