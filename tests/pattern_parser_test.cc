#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "log/activity_dictionary.h"
#include "query/pattern.h"
#include "query/pattern_parser.h"

namespace seqdet::query {
namespace {

using eventlog::ActivityDictionary;
using eventlog::ActivityId;

/// A dictionary that exercises every quoting hazard: whitespace, grammar
/// punctuation, two-character operators, and the constraint/template
/// keywords themselves used as activity names.
ActivityDictionary WeirdDict() {
  ActivityDictionary dict;
  for (const char* name :
       {"a", "b", "c", "d", "Create Fine", "within", "gap", "response",
        "absence", "a|b", "x->y", "plus+", "(paren", "bang!"}) {
    dict.Intern(name);
  }
  return dict;
}

// ---------------------------------------------------------------------------
// Round-trip property: Parse(ToString(p)) == p for every valid pattern.
// ---------------------------------------------------------------------------

/// Samples a random valid ExtendedPattern in canonical form (alternatives
/// sorted + deduped, at least one positive, no negated Kleene).
ExtendedPattern RandomPattern(Rng& rng, size_t num_activities) {
  ExtendedPattern pattern;
  const size_t len = 1 + rng.NextBounded(4);
  for (size_t i = 0; i < len; ++i) {
    PatternElement element;
    const size_t alts = 1 + rng.NextBounded(3);
    for (size_t j = 0; j < alts; ++j) {
      element.alternatives.push_back(
          static_cast<ActivityId>(rng.NextBounded(num_activities)));
    }
    std::sort(element.alternatives.begin(), element.alternatives.end());
    element.alternatives.erase(
        std::unique(element.alternatives.begin(), element.alternatives.end()),
        element.alternatives.end());
    element.negated = rng.NextBool(0.2);
    element.kleene = !element.negated && rng.NextBool(0.3);
    pattern.elements.push_back(std::move(element));
  }
  // Validate() requires at least one positive element.
  bool any_positive = false;
  for (const auto& e : pattern.elements) any_positive |= !e.negated;
  if (!any_positive) pattern.elements.front().negated = false;
  if (rng.NextBool(0.4)) {
    pattern.max_span = static_cast<eventlog::Timestamp>(rng.NextBounded(1u << 20));
  }
  if (rng.NextBool(0.4)) {
    pattern.max_gap = static_cast<eventlog::Timestamp>(rng.NextBounded(1u << 20));
  }
  return pattern;
}

TEST(PatternParserPropertyTest, ToStringParseRoundTrip) {
  ActivityDictionary dict = WeirdDict();
  Rng rng(20210323);
  for (int i = 0; i < 2000; ++i) {
    ExtendedPattern pattern = RandomPattern(rng, dict.size());
    ASSERT_TRUE(pattern.Validate().ok());
    std::string text = pattern.ToString(dict);
    auto reparsed = ParseExtendedPatternQuery(text, dict);
    ASSERT_TRUE(reparsed.ok()) << "query: " << text << "\n"
                               << reparsed.status();
    EXPECT_EQ(*reparsed, pattern) << "query: " << text;
  }
}

TEST(PatternParserPropertyTest, QuotedWeirdNamesRoundTrip) {
  ActivityDictionary dict = WeirdDict();
  for (const char* name :
       {"Create Fine", "within", "gap", "response", "absence", "a|b", "x->y",
        "plus+", "(paren", "bang!"}) {
    ExtendedPattern pattern;
    PatternElement element;
    element.alternatives.push_back(dict.Lookup(name));
    pattern.elements.push_back(element);
    std::string text = pattern.ToString(dict);
    auto reparsed = ParseExtendedPatternQuery(text, dict);
    ASSERT_TRUE(reparsed.ok()) << "name: " << name << " query: " << text
                               << "\n" << reparsed.status();
    EXPECT_EQ(*reparsed, pattern) << "query: " << text;
  }
}

// ---------------------------------------------------------------------------
// Grammar coverage
// ---------------------------------------------------------------------------

TEST(PatternParserGrammarTest, DurationSuffixes) {
  ActivityDictionary dict = WeirdDict();
  auto p = ParseExtendedPatternQuery("a within 5m gap <= 2s", dict);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->max_span, 300);
  EXPECT_EQ(p->max_gap, 2);
  p = ParseExtendedPatternQuery("a b within 2h", dict);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->max_span, 7200);
  p = ParseExtendedPatternQuery("a b within 1d", dict);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->max_span, 86400);
}

TEST(PatternParserGrammarTest, ArrowSeparatorsOptional) {
  ActivityDictionary dict = WeirdDict();
  auto spaced = ParseExtendedPatternQuery("a (b|c)+ !d a", dict);
  auto arrowed = ParseExtendedPatternQuery("a -> (b|c)+ -> !d -> a", dict);
  ASSERT_TRUE(spaced.ok()) << spaced.status();
  ASSERT_TRUE(arrowed.ok()) << arrowed.status();
  EXPECT_EQ(*spaced, *arrowed);
}

TEST(PatternParserGrammarTest, AlternativesCanonicalized) {
  ActivityDictionary dict = WeirdDict();
  auto forward = ParseExtendedPatternQuery("(a|b|c) d", dict);
  auto backward = ParseExtendedPatternQuery("(c|b|a|b) d", dict);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(*forward, *backward);
  EXPECT_EQ(forward->elements[0].alternatives.size(), 3u);
}

TEST(PatternParserGrammarTest, TemplatesExpand) {
  ActivityDictionary dict = WeirdDict();
  ActivityId a = dict.Lookup("a");
  ActivityId b = dict.Lookup("b");
  auto response = ParseExtendedPatternQuery("response(a, b)", dict);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(*response, CompliancePattern(ComplianceRule::kResponse, a, b));
  auto precedence = ParseExtendedPatternQuery("precedence(a,b)", dict);
  ASSERT_TRUE(precedence.ok()) << precedence.status();
  EXPECT_EQ(*precedence, CompliancePattern(ComplianceRule::kPrecedence, a, b));
  auto absence = ParseExtendedPatternQuery("absence(a)", dict);
  ASSERT_TRUE(absence.ok()) << absence.status();
  EXPECT_EQ(*absence, CompliancePattern(ComplianceRule::kAbsence, a));
}

TEST(PatternParserGrammarTest, TemplateKeywordOnlyWithParen) {
  // "response" not followed by "(" is an ordinary (known) activity name.
  ActivityDictionary dict = WeirdDict();
  auto p = ParseExtendedPatternQuery("response b", dict);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->size(), 2u);
  EXPECT_EQ(p->elements[0].alternatives,
            (std::vector<ActivityId>{dict.Lookup("response")}));
}

TEST(PatternParserGrammarTest, TemplatesAcceptConstraints) {
  ActivityDictionary dict = WeirdDict();
  auto p = ParseExtendedPatternQuery("response(a, b) within 60", dict);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->max_span, 60);
}

TEST(PatternParserGrammarTest, PlainEndpointRejectsExtendedOperators) {
  ActivityDictionary dict = WeirdDict();
  for (const char* query : {"(a|b) c", "a b+", "!a b", "a !b c",
                            "response(a, b)"}) {
    auto parsed = ParsePatternQuery(query, dict);
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << query;
  }
  // Plain sequences still pass through, constraints intact.
  auto plain = ParsePatternQuery("a b within 9", dict);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->pattern.activities.size(), 2u);
  EXPECT_EQ(plain->constraints.max_span, 9);
}

// ---------------------------------------------------------------------------
// Malformed inputs: always a clean error status, never a crash.
// ---------------------------------------------------------------------------

void ExpectCleanError(const ActivityDictionary& dict, const std::string& query) {
  auto parsed = ParseExtendedPatternQuery(query, dict);
  ASSERT_FALSE(parsed.ok()) << "unexpectedly parsed: " << query;
  EXPECT_TRUE(parsed.status().IsInvalidArgument() ||
              parsed.status().IsNotFound())
      << "query: " << query << " status: " << parsed.status();
}

TEST(PatternParserFuzzTest, MalformedCorpus) {
  ActivityDictionary dict = WeirdDict();
  for (const char* query : {
           "",          "   ",        "(",         "(((",       "()",
           "(|)",       "(a|)",       "(|a)",      "(a|b",      "a)",
           "!",         "a !",        "!!a",       "!a+",       "!(a|b)+",
           "a ->",      "-> a",       "a -> -> b", "+",
           "|",         "a | b",      ",",         "a, b",
           "within",    "a within",   "a within 5x",
           "a within -3", "a within 99999999999999999999d",
           "a gap",     "a gap <=",   "a gap <= x", "a gap 5",
           "a gap == 5",
           "\"unterminated", "\"\"",  "a \"", "!a !b",
           "response(", "response(a", "response(a,", "response(a,b",
           "response(a b)", "response(a,b,c)", "response()",
           "precedence(a)", "absence()", "absence(a,b)", "absence(ghost)",
           "ghost",     "a ghost b",  "(a|ghost)",
       }) {
    ExpectCleanError(dict, query);
  }
}

TEST(PatternParserFuzzTest, HugeInputsRejectedWithoutCrashing) {
  ActivityDictionary dict = WeirdDict();
  const size_t kBig = 64 * 1024;
  // One 64 KiB unknown name.
  ExpectCleanError(dict, std::string(kBig, 'z'));
  // 64 KiB of unbalanced opens — parsing must stay iterative, not recursive.
  ExpectCleanError(dict, std::string(kBig, '('));
  ExpectCleanError(dict, std::string(kBig, '!'));
  ExpectCleanError(dict, std::string(kBig, '"'));
  // A very long but VALID query still parses.
  std::string valid = "a";
  for (int i = 0; i < 4000; ++i) valid += " -> (a|b)+";
  auto parsed = ParseExtendedPatternQuery(valid, dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 4001u);
}

TEST(PatternParserFuzzTest, RandomGarbageNeverCrashes) {
  ActivityDictionary dict = WeirdDict();
  Rng rng(0xfeedface);
  for (int i = 0; i < 2000; ++i) {
    std::string query;
    const size_t len = rng.NextBounded(64);
    for (size_t j = 0; j < len; ++j) {
      // Printable ASCII, biased toward grammar punctuation so bracketing
      // and operator edge cases are hit often.
      if (rng.NextBool(0.4)) {
        const char* punct = "()|!+,\"<->= ";
        query += punct[rng.NextBounded(12)];
      } else {
        query += static_cast<char>(' ' + rng.NextBounded(95));
      }
    }
    auto parsed = ParseExtendedPatternQuery(query, dict);
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsInvalidArgument() ||
                  parsed.status().IsNotFound())
          << "query: " << query << " status: " << parsed.status();
    }
  }
}

}  // namespace
}  // namespace seqdet::query
