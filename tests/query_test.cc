#include <algorithm>
#include <set>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/sequence_index.h"
#include "query/pattern.h"
#include "query/pattern_parser.h"
#include "query/query_processor.h"
#include "storage/database.h"

namespace seqdet::query {
namespace {

using eventlog::EventLog;
using eventlog::Timestamp;
using index::EventTypePair;
using index::IndexOptions;
using index::Policy;
using index::SequenceIndex;

struct Fixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<SequenceIndex> index;

  explicit Fixture(const EventLog& log,
                   Policy policy = Policy::kSkipTillNextMatch) {
    storage::DbOptions db_options;
    db_options.table.in_memory = true;
    db_options.table.use_wal = false;
    db = std::move(storage::Database::Open("", db_options)).value();
    IndexOptions options;
    options.num_threads = 1;
    options.policy = policy;
    index = std::move(SequenceIndex::Open(db.get(), options)).value();
    auto stats = index->Update(log);
    EXPECT_TRUE(stats.ok()) << stats.status();
  }
};

// The paper's example trace.
EventLog PaperLog() {
  EventLog log;
  log.Append(7, "A", 1);
  log.Append(7, "A", 2);
  log.Append(7, "B", 3);
  log.Append(7, "A", 4);
  log.Append(7, "B", 5);
  log.Append(7, "A", 6);
  log.SortAllTraces();
  return log;
}

Pattern NamedPattern(const Fixture& f, std::vector<std::string> names) {
  auto p = Pattern::FromNames(f.index->dictionary(), names);
  EXPECT_TRUE(p.ok()) << p.status();
  return *p;
}

// ---------------------------------------------------------------------------
// Pattern
// ---------------------------------------------------------------------------

TEST(PatternTest, FromNamesResolvesIds) {
  eventlog::ActivityDictionary dict;
  dict.Intern("x");
  dict.Intern("y");
  auto p = Pattern::FromNames(dict, {"y", "x", "y"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->activities, (std::vector<eventlog::ActivityId>{1, 0, 1}));
  EXPECT_EQ(p->ToString(dict), "<y, x, y>");
}

TEST(PatternTest, UnknownNameRejected) {
  eventlog::ActivityDictionary dict;
  EXPECT_TRUE(Pattern::FromNames(dict, {"ghost"}).status().IsNotFound());
}

TEST(PatternTest, ExtendedAppends) {
  Pattern p({1, 2});
  Pattern q = p.Extended(3);
  EXPECT_EQ(q.activities, (std::vector<eventlog::ActivityId>{1, 2, 3}));
  EXPECT_EQ(p.size(), 2u);  // original untouched
}

// ---------------------------------------------------------------------------
// Detection (Algorithm 2)
// ---------------------------------------------------------------------------

TEST(DetectTest, PairPatternReturnsPostings) {
  EventLog log = PaperLog();
  Fixture f(log);
  auto matches = QueryProcessor(f.index.get())
                     .Detect(NamedPattern(f, {"A", "B"}));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 2u);  // (1,3) and (4,5)
  EXPECT_EQ((*matches)[0].timestamps, (std::vector<Timestamp>{1, 3}));
  EXPECT_EQ((*matches)[1].timestamps, (std::vector<Timestamp>{4, 5}));
}

TEST(DetectTest, TripleJoinsOnSharedEvent) {
  EventLog log = PaperLog();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  // A->B->A: (A,B) completions (1,3),(4,5); (B,A) completions (3,4),(5,6).
  // Joins: [1,3]+(3,4) -> [1,3,4]; [4,5]+(5,6) -> [4,5,6].
  auto matches = qp.Detect(NamedPattern(f, {"A", "B", "A"}));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 2u);
  EXPECT_EQ((*matches)[0].timestamps, (std::vector<Timestamp>{1, 3, 4}));
  EXPECT_EQ((*matches)[1].timestamps, (std::vector<Timestamp>{4, 5, 6}));
}

TEST(DetectTest, IntroductionExample) {
  // §2.1: <AAABAACB>, pattern AAB. Whole-pattern STNM semantics has two
  // occurrences ([1,2,4] and [5,6,8]); Algorithm 2 joins the *greedy pair*
  // completions — (A,A): (1,2),(3,5) and (A,B): (1,4),(5,8) — whose only
  // join is [3,5,8]. Reproducing the paper's algorithm faithfully means
  // one match here (a documented limitation, see DESIGN.md §4), and the
  // reported match must be a valid STNM occurrence.
  EventLog log;
  int ts = 1;
  for (char c : std::string("AAABAACB")) {
    log.Append(1, std::string(1, c), ts++);
  }
  log.SortAllTraces();
  Fixture f(log);
  auto matches =
      QueryProcessor(f.index.get()).Detect(NamedPattern(f, {"A", "A", "B"}));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].timestamps, (std::vector<Timestamp>{3, 5, 8}));
}

TEST(DetectTest, NoMatchesForAbsentPattern) {
  EventLog log = PaperLog();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  auto matches = qp.Detect(NamedPattern(f, {"B", "B", "B"}));
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST(DetectTest, PatternTooShortRejected) {
  EventLog log = PaperLog();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  EXPECT_TRUE(qp.Detect(Pattern({0})).status().IsInvalidArgument());
  EXPECT_TRUE(qp.Detect(Pattern()).status().IsInvalidArgument());
}

TEST(DetectTest, MatchesSpanMultipleTraces) {
  EventLog log;
  for (eventlog::TraceId t = 0; t < 5; ++t) {
    log.Append(t, "X", 1);
    log.Append(t, "Y", 2);
    log.Append(t, "Z", 3);
  }
  log.SortAllTraces();
  Fixture f(log);
  auto matches =
      QueryProcessor(f.index.get()).Detect(NamedPattern(f, {"X", "Y", "Z"}));
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 5u);
  std::set<eventlog::TraceId> traces;
  for (auto& m : *matches) traces.insert(m.trace);
  EXPECT_EQ(traces.size(), 5u);
}

TEST(DetectTest, ScPolicyRequiresContiguity) {
  EventLog log;
  log.Append(1, "A", 1);
  log.Append(1, "X", 2);
  log.Append(1, "B", 3);
  log.Append(2, "A", 1);
  log.Append(2, "B", 2);
  log.SortAllTraces();
  Fixture f(log, Policy::kStrictContiguity);
  auto matches =
      QueryProcessor(f.index.get()).Detect(NamedPattern(f, {"A", "B"}));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].trace, 2u);  // trace 1 has X in between
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

TEST(StatisticsTest, PairRowsAndBounds) {
  EventLog log = PaperLog();
  Fixture f(log);
  auto stats =
      QueryProcessor(f.index.get()).Statistics(NamedPattern(f, {"A", "B", "A"}));
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->pairs.size(), 2u);
  // (A,B): completions (1,3),(4,5) -> 2 completions, durations 2+1.
  EXPECT_EQ(stats->pairs[0].total_completions, 2u);
  EXPECT_NEAR(stats->pairs[0].average_duration, 1.5, 1e-9);
  // (B,A): completions (3,4),(5,6) -> 2 completions, avg 1.
  EXPECT_EQ(stats->pairs[1].total_completions, 2u);
  EXPECT_NEAR(stats->pairs[1].average_duration, 1.0, 1e-9);
  EXPECT_EQ(stats->completions_upper_bound, 2u);
  EXPECT_NEAR(stats->estimated_duration, 2.5, 1e-9);
}

TEST(StatisticsTest, AbsentPairGivesZeroBound) {
  EventLog log = PaperLog();
  Fixture f(log);
  auto stats = QueryProcessor(f.index.get())
                   .Statistics(NamedPattern(f, {"B", "B", "A"}));
  ASSERT_TRUE(stats.ok());
  // (B,B) completes once (3,5); bound = min(1, ...) but (B,A) has 2.
  EXPECT_EQ(stats->completions_upper_bound, 1u);
}

TEST(StatisticsTest, UpperBoundIsActuallyAnUpperBound) {
  // Property: true completion count <= pairwise upper bound.
  Rng rng(9);
  EventLog log;
  for (size_t t = 0; t < 20; ++t) {
    for (size_t i = 0; i < 30; ++i) {
      log.Append(t, std::string(1, static_cast<char>('A' + rng.NextBounded(4))),
                 static_cast<Timestamp>(i + 1));
    }
  }
  log.SortAllTraces();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  for (int i = 0; i < 20; ++i) {
    std::vector<std::string> names;
    for (int j = 0; j < 3; ++j) {
      names.push_back(std::string(1, static_cast<char>('A' + rng.NextBounded(4))));
    }
    Pattern pattern = NamedPattern(f, names);
    auto stats = qp.Statistics(pattern);
    auto matches = qp.Detect(pattern);
    ASSERT_TRUE(stats.ok());
    ASSERT_TRUE(matches.ok());
    EXPECT_LE(matches->size(), stats->completions_upper_bound);
  }
}

// ---------------------------------------------------------------------------
// Continuation (Algorithms 3-5)
// ---------------------------------------------------------------------------

EventLog ContinuationLog() {
  // After "A B", the continuation C happens twice quickly, D once slowly.
  EventLog log;
  for (eventlog::TraceId t = 0; t < 4; ++t) {
    log.Append(t, "A", 1);
    log.Append(t, "B", 2);
    if (t < 2) {
      log.Append(t, "C", 3);
    } else if (t == 2) {
      log.Append(t, "D", 50);
    }
  }
  log.SortAllTraces();
  return log;
}

TEST(ContinuationTest, AccurateRanksByScore) {
  EventLog log = ContinuationLog();
  Fixture f(log);
  auto proposals = QueryProcessor(f.index.get())
                       .ContinueAccurate(NamedPattern(f, {"A", "B"}));
  ASSERT_TRUE(proposals.ok());
  ASSERT_EQ(proposals->size(), 2u);  // C and D follow B
  const auto& dict = f.index->dictionary();
  EXPECT_EQ(dict.Name((*proposals)[0].activity), "C");
  EXPECT_EQ((*proposals)[0].total_completions, 2u);
  EXPECT_NEAR((*proposals)[0].average_duration, 1.0, 1e-9);
  EXPECT_EQ(dict.Name((*proposals)[1].activity), "D");
  EXPECT_EQ((*proposals)[1].total_completions, 1u);
  EXPECT_GT((*proposals)[0].score, (*proposals)[1].score);
}

TEST(ContinuationTest, AccurateHonorsTimeConstraint) {
  EventLog log = ContinuationLog();
  Fixture f(log);
  ContinuationConstraints constraints;
  constraints.max_gap = 10;  // D's gap of 48 exceeds it
  auto proposals =
      QueryProcessor(f.index.get())
          .ContinueAccurate(NamedPattern(f, {"A", "B"}), constraints);
  ASSERT_TRUE(proposals.ok());
  const auto& dict = f.index->dictionary();
  for (const auto& p : *proposals) {
    if (dict.Name(p.activity) == "D") {
      EXPECT_EQ(p.total_completions, 0u);
    }
  }
}

TEST(ContinuationTest, NaiveAlgorithm3MatchesIncremental) {
  Rng rng(88);
  EventLog log;
  for (size_t t = 0; t < 20; ++t) {
    for (size_t i = 0; i < 20; ++i) {
      log.Append(t, std::string(1, static_cast<char>('A' + rng.NextBounded(4))),
                 static_cast<Timestamp>(i + 1));
    }
  }
  log.SortAllTraces();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  for (auto names : {std::vector<std::string>{"A", "B"},
                     std::vector<std::string>{"C"},
                     std::vector<std::string>{"A", "B", "C"}}) {
    Pattern pattern = NamedPattern(f, names);
    auto naive = qp.ContinueAccurateNaive(pattern);
    auto incremental = qp.ContinueAccurate(pattern);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(incremental.ok());
    ASSERT_EQ(naive->size(), incremental->size());
    for (size_t i = 0; i < naive->size(); ++i) {
      EXPECT_EQ((*naive)[i].activity, (*incremental)[i].activity) << i;
      EXPECT_EQ((*naive)[i].total_completions,
                (*incremental)[i].total_completions)
          << i;
      EXPECT_DOUBLE_EQ((*naive)[i].average_duration,
                       (*incremental)[i].average_duration)
          << i;
    }
  }
}

TEST(ContinuationTest, FastUsesUpperBound) {
  EventLog log = ContinuationLog();
  Fixture f(log);
  auto proposals = QueryProcessor(f.index.get())
                       .ContinueFast(NamedPattern(f, {"A", "B"}));
  ASSERT_TRUE(proposals.ok());
  ASSERT_EQ(proposals->size(), 2u);
  // (A,B) completes 4 times; (B,C) twice; candidate count min(4,2)=2.
  EXPECT_EQ((*proposals)[0].total_completions, 2u);
}

TEST(ContinuationTest, FastNeverUnderestimatesAccurate) {
  // Property: fast's count is an upper bound of accurate's count per
  // candidate (fast is min of pairwise bounds; accurate is the true join).
  Rng rng(21);
  EventLog log;
  for (size_t t = 0; t < 25; ++t) {
    for (size_t i = 0; i < 20; ++i) {
      log.Append(t, std::string(1, static_cast<char>('A' + rng.NextBounded(5))),
                 static_cast<Timestamp>(i + 1));
    }
  }
  log.SortAllTraces();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  Pattern pattern = NamedPattern(f, {"A", "B"});
  auto fast = qp.ContinueFast(pattern);
  auto accurate = qp.ContinueAccurate(pattern);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(accurate.ok());
  for (const auto& a : *accurate) {
    auto it = std::find_if(
        fast->begin(), fast->end(),
        [&](const ContinuationProposal& p) { return p.activity == a.activity; });
    ASSERT_NE(it, fast->end());
    EXPECT_GE(it->total_completions, a.total_completions)
        << "candidate " << a.activity;
  }
}

TEST(ContinuationTest, HybridDegeneratesToFastAtZero) {
  EventLog log = ContinuationLog();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  Pattern pattern = NamedPattern(f, {"A", "B"});
  auto fast = qp.ContinueFast(pattern);
  auto hybrid = qp.ContinueHybrid(pattern, 0);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(hybrid.ok());
  ASSERT_EQ(fast->size(), hybrid->size());
  for (size_t i = 0; i < fast->size(); ++i) {
    EXPECT_EQ((*fast)[i].activity, (*hybrid)[i].activity);
    EXPECT_EQ((*fast)[i].total_completions, (*hybrid)[i].total_completions);
  }
}

TEST(ContinuationTest, HybridEqualsAccurateAtFullK) {
  Rng rng(22);
  EventLog log;
  for (size_t t = 0; t < 15; ++t) {
    for (size_t i = 0; i < 18; ++i) {
      log.Append(t, std::string(1, static_cast<char>('A' + rng.NextBounded(5))),
                 static_cast<Timestamp>(i + 1));
    }
  }
  log.SortAllTraces();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  Pattern pattern = NamedPattern(f, {"A", "B"});
  auto accurate = qp.ContinueAccurate(pattern);
  auto hybrid = qp.ContinueHybrid(pattern, 100);  // k >= |A|
  ASSERT_TRUE(accurate.ok());
  ASSERT_TRUE(hybrid.ok());
  ASSERT_EQ(accurate->size(), hybrid->size());
  for (size_t i = 0; i < accurate->size(); ++i) {
    EXPECT_EQ((*accurate)[i].activity, (*hybrid)[i].activity) << i;
    EXPECT_EQ((*accurate)[i].total_completions,
              (*hybrid)[i].total_completions)
        << i;
  }
}

TEST(ContinuationTest, SingleEventPattern) {
  EventLog log = ContinuationLog();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  auto proposals = qp.ContinueAccurate(NamedPattern(f, {"B"}));
  ASSERT_TRUE(proposals.ok());
  ASSERT_EQ(proposals->size(), 2u);
  EXPECT_EQ((*proposals)[0].total_completions, 2u);  // B->C twice
  auto hybrid = qp.ContinueHybrid(NamedPattern(f, {"B"}), 1);
  ASSERT_TRUE(hybrid.ok());
  EXPECT_EQ((*hybrid)[0].total_completions, 2u);
}

TEST(ContinuationTest, EmptyPatternRejected) {
  EventLog log = ContinuationLog();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  EXPECT_TRUE(qp.ContinueAccurate(Pattern()).status().IsInvalidArgument());
  EXPECT_TRUE(qp.ContinueFast(Pattern()).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Pattern parser
// ---------------------------------------------------------------------------

eventlog::ActivityDictionary ParserDict() {
  eventlog::ActivityDictionary dict;
  dict.Intern("search");
  dict.Intern("add_to_cart");
  dict.Intern("Create Fine");
  return dict;
}

TEST(PatternParserTest, ParsesSteps) {
  auto dict = ParserDict();
  auto parsed = ParsePatternQuery("search -> add_to_cart", dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->pattern.activities,
            (std::vector<eventlog::ActivityId>{0, 1}));
  EXPECT_FALSE(parsed->constraints.max_gap.has_value());
  EXPECT_FALSE(parsed->constraints.max_span.has_value());
}

TEST(PatternParserTest, QuotedNamesAndConstraints) {
  auto dict = ParserDict();
  auto parsed = ParsePatternQuery(
      "\"Create Fine\" -> search within 3600 gap <= 60", dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->pattern.activities,
            (std::vector<eventlog::ActivityId>{2, 0}));
  ASSERT_TRUE(parsed->constraints.max_span.has_value());
  EXPECT_EQ(*parsed->constraints.max_span, 3600);
  ASSERT_TRUE(parsed->constraints.max_gap.has_value());
  EXPECT_EQ(*parsed->constraints.max_gap, 60);
}

TEST(PatternParserTest, SingleStep) {
  auto dict = ParserDict();
  auto parsed = ParsePatternQuery("search", dict);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->pattern.size(), 1u);
}

TEST(PatternParserTest, WhitespaceTolerant) {
  auto dict = ParserDict();
  auto parsed = ParsePatternQuery("  search->add_to_cart   within   5 ",
                                  dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->pattern.size(), 2u);
  EXPECT_EQ(*parsed->constraints.max_span, 5);
}

TEST(PatternParserTest, QuotedKeywordIsAnActivityName) {
  eventlog::ActivityDictionary dict;
  dict.Intern("within");
  dict.Intern("gap");
  auto parsed = ParsePatternQuery("\"within\" -> \"gap\"", dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->pattern.size(), 2u);
}

TEST(PatternParserTest, NegativeTimestampsInLogStillQueryable) {
  // Events before the epoch (negative timestamps) round-trip through the
  // zigzag encodings end to end.
  EventLog log;
  log.Append(1, "A", -100);
  log.Append(1, "B", -50);
  log.SortAllTraces();
  Fixture f(log);
  auto matches = QueryProcessor(f.index.get())
                     .Detect(NamedPattern(f, {"A", "B"}));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].timestamps, (std::vector<Timestamp>{-100, -50}));
}

TEST(PatternParserTest, Errors) {
  auto dict = ParserDict();
  EXPECT_TRUE(ParsePatternQuery("", dict).status().IsInvalidArgument());
  EXPECT_TRUE(ParsePatternQuery("ghost", dict).status().IsNotFound());
  EXPECT_TRUE(ParsePatternQuery("search ->", dict).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParsePatternQuery("search within abc", dict)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParsePatternQuery("search gap 5", dict)
                  .status()
                  .IsInvalidArgument());
  // "->" separators are optional since the extended grammar, so trailing
  // junk now parses as further (unknown) activity names.
  EXPECT_TRUE(ParsePatternQuery("search frobnicate 5", dict)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ParsePatternQuery("\"unterminated", dict)
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Batch + per-trace detection
// ---------------------------------------------------------------------------

TEST(DetectBatchTest, MatchesSequentialResults) {
  EventLog log = PaperLog();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  std::vector<Pattern> patterns = {NamedPattern(f, {"A", "B"}),
                                   NamedPattern(f, {"B", "A"}),
                                   NamedPattern(f, {"A", "B", "A"})};
  ThreadPool pool(3);
  auto parallel = qp.DetectBatch(patterns, &pool);
  auto serial = qp.DetectBatch(patterns, nullptr);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(parallel->size(), 3u);
  for (size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_EQ((*parallel)[i], (*serial)[i]) << i;
    auto direct = qp.Detect(patterns[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ((*parallel)[i], *direct) << i;
  }
}

TEST(DetectBatchTest, ErrorSurfaces) {
  EventLog log = PaperLog();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  std::vector<Pattern> patterns = {NamedPattern(f, {"A", "B"}), Pattern()};
  EXPECT_TRUE(qp.DetectBatch(patterns).status().IsInvalidArgument());
}

TEST(DetectInTraceTest, StnmGreedyWholePattern) {
  EventLog log = PaperLog();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  auto matches = qp.DetectInTrace(7, NamedPattern(f, {"A", "B"}));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 2u);  // greedy: (1,3) and (4,5)
  EXPECT_EQ((*matches)[0].timestamps, (std::vector<Timestamp>{1, 3}));
  auto missing = qp.DetectInTrace(999, NamedPattern(f, {"A", "B"}));
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
}

TEST(DetectInTraceTest, AgreesWithDetectForLengthTwo) {
  // For pattern length 2 the index postings ARE the greedy whole-pattern
  // matches, so drill-down and global detection agree exactly per trace.
  Rng rng(91);
  EventLog log;
  for (size_t t = 0; t < 10; ++t) {
    for (size_t i = 0; i < 30; ++i) {
      log.Append(t, std::string(1, static_cast<char>('A' + rng.NextBounded(3))),
                 static_cast<Timestamp>(i + 1));
    }
  }
  log.SortAllTraces();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  for (char a = 'A'; a <= 'C'; ++a) {
    for (char b = 'A'; b <= 'C'; ++b) {
      Pattern pattern = NamedPattern(
          f, {std::string(1, a), std::string(1, b)});
      auto global = qp.Detect(pattern);
      ASSERT_TRUE(global.ok());
      size_t per_trace_total = 0;
      for (size_t t = 0; t < 10; ++t) {
        auto local = qp.DetectInTrace(t, pattern);
        ASSERT_TRUE(local.ok());
        per_trace_total += local->size();
      }
      EXPECT_EQ(global->size(), per_trace_total) << a << b;
    }
  }
}

TEST(DetectInTraceTest, ScWindows) {
  EventLog log;
  log.Append(1, "A", 1);
  log.Append(1, "A", 2);
  log.Append(1, "A", 3);
  log.SortAllTraces();
  Fixture f(log, Policy::kStrictContiguity);
  QueryProcessor qp(f.index.get());
  auto matches = qp.DetectInTrace(1, NamedPattern(f, {"A", "A"}));
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);  // overlapping windows
}

TEST(ContinuationTest, DeadEndActivityYieldsNoProposals) {
  EventLog log;
  log.Append(1, "A", 1);
  log.Append(1, "END", 2);
  log.SortAllTraces();
  Fixture f(log);
  QueryProcessor qp(f.index.get());
  auto proposals = qp.ContinueFast(NamedPattern(f, {"A", "END"}));
  ASSERT_TRUE(proposals.ok());
  EXPECT_TRUE(proposals->empty());
}


// ---------------------------------------------------------------------------
// Parallel execution (morsel-driven engine)
// ---------------------------------------------------------------------------

/// Tiny thresholds so even toy logs exercise the morselized joins, the
/// posting prefetch, and the parallel candidate verification.
ParallelExecutionOptions TinyMorsels() {
  ParallelExecutionOptions par;
  par.morsel_target_postings = 8;
  par.min_parallel_join_input = 1;
  par.min_parallel_candidates = 1;
  return par;
}

/// A log wide enough (many traces) for trace-aligned morsels to actually
/// split, with repeated keys so joins have real fan-out.
EventLog WideRandomLog(uint64_t seed, size_t traces, size_t events_per_trace,
                       int alphabet) {
  Rng rng(seed);
  EventLog log;
  for (size_t t = 0; t < traces; ++t) {
    for (size_t i = 0; i < events_per_trace; ++i) {
      log.Append(t,
                 std::string(1, static_cast<char>(
                                    'A' + rng.NextBounded(
                                              static_cast<uint64_t>(alphabet)))),
                 static_cast<Timestamp>(i + 1));
    }
  }
  log.SortAllTraces();
  return log;
}

TEST(ParallelQueryTest, DetectByteIdenticalToSerial) {
  for (Policy policy : {Policy::kSkipTillNextMatch, Policy::kStrictContiguity,
                        Policy::kSkipTillAnyMatch}) {
    EventLog log = WideRandomLog(17, 60, 20, 4);
    Fixture f(log, policy);
    QueryProcessor serial(f.index.get());
    ThreadPool pool(4);
    QueryProcessor parallel(f.index.get(), &pool, TinyMorsels());
    Rng rng(5);
    for (int i = 0; i < 40; ++i) {
      std::vector<std::string> names;
      size_t len = 2 + rng.NextBounded(3);
      for (size_t j = 0; j < len; ++j) {
        names.push_back(std::string(1, static_cast<char>('A' + rng.NextBounded(4))));
      }
      Pattern pattern = NamedPattern(f, names);
      auto expected = serial.Detect(pattern);
      auto actual = parallel.Detect(pattern);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(actual.ok()) << actual.status();
      // Byte identity: same matches in the same order, not just same set.
      EXPECT_EQ(*actual, *expected) << "policy " << static_cast<int>(policy);
    }
  }
}

TEST(ParallelQueryTest, DetectWithConstraintsMatchesSerial) {
  EventLog log = WideRandomLog(23, 50, 16, 3);
  Fixture f(log);
  QueryProcessor serial(f.index.get());
  ThreadPool pool(3);
  QueryProcessor parallel(f.index.get(), &pool, TinyMorsels());
  Pattern pattern = NamedPattern(f, {"A", "B", "A"});
  DetectionConstraints constraints;
  constraints.max_gap = 4;
  constraints.max_span = 9;
  auto expected = serial.Detect(pattern, constraints);
  auto actual = parallel.Detect(pattern, constraints);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(*actual, *expected);
}

TEST(ParallelQueryTest, ExpiredDeadlineStillAborts) {
  EventLog log = WideRandomLog(29, 40, 16, 3);
  Fixture f(log);
  ThreadPool pool(4);
  QueryProcessor parallel(f.index.get(), &pool, TinyMorsels());
  DetectionConstraints constraints;
  constraints.deadline = Deadline::After(0);
  auto matches = parallel.Detect(NamedPattern(f, {"A", "B", "A"}), constraints);
  EXPECT_TRUE(matches.status().IsAborted());
}

TEST(ParallelQueryTest, ContinuationsMatchSerial) {
  EventLog log = WideRandomLog(31, 40, 18, 4);
  Fixture f(log);
  QueryProcessor serial(f.index.get());
  ThreadPool pool(4);
  QueryProcessor parallel(f.index.get(), &pool, TinyMorsels());
  for (const char* base : {"A", "B"}) {
    Pattern pattern = NamedPattern(f, {"A", base});
    auto accurate_s = serial.ContinueAccurate(pattern);
    auto accurate_p = parallel.ContinueAccurate(pattern);
    ASSERT_TRUE(accurate_s.ok());
    ASSERT_TRUE(accurate_p.ok());
    EXPECT_EQ(accurate_p->size(), accurate_s->size());
    for (size_t i = 0; i < accurate_s->size(); ++i) {
      EXPECT_EQ((*accurate_p)[i].activity, (*accurate_s)[i].activity);
      EXPECT_EQ((*accurate_p)[i].total_completions,
                (*accurate_s)[i].total_completions);
      EXPECT_EQ((*accurate_p)[i].score, (*accurate_s)[i].score);
    }
    auto hybrid_s = serial.ContinueHybrid(pattern, 3);
    auto hybrid_p = parallel.ContinueHybrid(pattern, 3);
    ASSERT_TRUE(hybrid_s.ok());
    ASSERT_TRUE(hybrid_p.ok());
    ASSERT_EQ(hybrid_p->size(), hybrid_s->size());
    for (size_t i = 0; i < hybrid_s->size(); ++i) {
      EXPECT_EQ((*hybrid_p)[i].activity, (*hybrid_s)[i].activity);
      EXPECT_EQ((*hybrid_p)[i].score, (*hybrid_s)[i].score);
    }
    auto insert_s = serial.ContinueInsertAccurate(pattern, 1);
    auto insert_p = parallel.ContinueInsertAccurate(pattern, 1);
    ASSERT_TRUE(insert_s.ok());
    ASSERT_TRUE(insert_p.ok());
    ASSERT_EQ(insert_p->size(), insert_s->size());
    for (size_t i = 0; i < insert_s->size(); ++i) {
      EXPECT_EQ((*insert_p)[i].activity, (*insert_s)[i].activity);
      EXPECT_EQ((*insert_p)[i].score, (*insert_s)[i].score);
    }
  }
}

TEST(ParallelQueryTest, DetectBatchFallsBackToMemberPool) {
  EventLog log = WideRandomLog(37, 30, 12, 3);
  Fixture f(log);
  QueryProcessor serial(f.index.get());
  ThreadPool pool(2);
  QueryProcessor parallel(f.index.get(), &pool, TinyMorsels());
  std::vector<Pattern> patterns{NamedPattern(f, {"A", "B"}),
                                NamedPattern(f, {"B", "A", "C"}),
                                NamedPattern(f, {"C", "C"})};
  auto expected = serial.DetectBatch(patterns);
  // No pool argument: the batch fans out on the processor's own pool, and
  // each query's nested fan-outs run inline on the batch workers.
  auto actual = parallel.DetectBatch(patterns);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(*actual, *expected);
  EXPECT_GT(pool.stats().tasks_executed, 0u);
}

// ---------------------------------------------------------------------------
// Extended patterns (disjunction, Kleene+, negation, windows)
//
// Every expected set below is computed by hand from the skip-till-next-match
// pair semantics (one greedy non-overlapping run per trace) so these tests
// are independent of both the index pipeline and the SASE oracle.
// ---------------------------------------------------------------------------

/// Trace 1: A@1 B@2 B@3 C@4   Trace 2: C@10 A@12 D@13   Trace 3: A@20
///
/// STNM pair sets (greedy, non-overlapping):
///   trace 1: (A,B)={(1,2)} (A,C)={(1,4)} (B,B)={(2,3)} (B,C)={(2,4)}
///   trace 2: (C,A)={(10,12)} (A,D)={(12,13)}
///   trace 3: none.
EventLog ExtendedLog() {
  EventLog log;
  log.Append(1, "A", 1);
  log.Append(1, "B", 2);
  log.Append(1, "B", 3);
  log.Append(1, "C", 4);
  log.Append(2, "C", 10);
  log.Append(2, "A", 12);
  log.Append(2, "D", 13);
  log.Append(3, "A", 20);
  log.SortAllTraces();
  return log;
}

ExtendedPattern Ext(const Fixture& f, std::string_view query) {
  auto p = ParseExtendedPatternQuery(query, f.index->dictionary());
  EXPECT_TRUE(p.ok()) << p.status();
  return p.ok() ? *p : ExtendedPattern();
}

PatternMatch M(eventlog::TraceId trace, std::vector<Timestamp> ts) {
  PatternMatch m;
  m.trace = trace;
  m.timestamps = ts;
  return m;
}

using Matches = std::vector<PatternMatch>;

TEST(ExtendedDetectTest, DisjunctionUnionsPairSets) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // (A|B) C = (A,C) u (B,C) per trace, sorted + deduped.
  auto m = qp.DetectExtended(Ext(f, "(A|B) C"));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(*m, (Matches{M(1, {1, 4}), M(1, {2, 4})}));
}

TEST(ExtendedDetectTest, DisjunctionBranchesSharingAnActivityDedupe) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // (A|A) collapses to A at parse time; results match the plain query.
  auto dup = qp.DetectExtended(Ext(f, "(A|A) C"));
  auto plain = qp.DetectExtended(Ext(f, "A C"));
  ASSERT_TRUE(dup.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(*dup, *plain);
  EXPECT_EQ(*dup, (Matches{M(1, {1, 4})}));
}

TEST(ExtendedDetectTest, KleeneChainsViaSharedEventJoins) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // Seed (A,B)={(1,2)}; closure over strict (B,B)={(2,3)} adds [1,2,3].
  // Transition (B,C)={(2,4)} extends [1,2] only — no (3,.) pair exists, so
  // the two-step chain dies at the join.
  auto m = qp.DetectExtended(Ext(f, "A B+ C"));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(*m, (Matches{M(1, {1, 2, 4})}));
}

TEST(ExtendedDetectTest, BareKleeneEnumeratesChains) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // Seeds are every B occurrence; [2] right-closes to [2,3]. Canonical order
  // is lexicographic on timestamps: [2] < [2,3] < [3].
  auto m = qp.DetectExtended(Ext(f, "B+"));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(*m, (Matches{M(1, {2}), M(1, {2, 3}), M(1, {3})}));
}

TEST(ExtendedDetectTest, EmptyKleeneBodyYieldsNoMatches) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // Kleene+ requires at least one occurrence; D never appears between A and
  // C anywhere, so the whole pattern is empty (not "skip the element").
  auto m = qp.DetectExtended(Ext(f, "A D+ C"));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->empty());
}

TEST(ExtendedDetectTest, NegatedFirstSymbolIsUnboundedToTheLeft) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // !B A C: no B strictly before the A of each (A,C) match. Trace 1's Bs are
  // after A@1, so the match survives.
  auto m = qp.DetectExtended(Ext(f, "!B A C"));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(*m, (Matches{M(1, {1, 4})}));
}

TEST(ExtendedDetectTest, InteriorNegationUsesOpenInterval) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // A !B C: B@2 sits strictly inside (1, 4), killing trace 1's only match.
  auto m = qp.DetectExtended(Ext(f, "A !B C"));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->empty());
}

TEST(ExtendedDetectTest, NegatedLastSymbolIsUnboundedToTheRight) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // A C !B: no B strictly after C@4 in trace 1.
  auto m = qp.DetectExtended(Ext(f, "A C !B"));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(*m, (Matches{M(1, {1, 4})}));
}

TEST(ExtendedDetectTest, WithinIsInclusiveAndPrunes) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // Span of [1,4] is exactly 3: "within 3" keeps it, "within 2" drops it.
  auto at = qp.DetectExtended(Ext(f, "A C within 3"));
  ASSERT_TRUE(at.ok()) << at.status();
  EXPECT_EQ(*at, (Matches{M(1, {1, 4})}));
  auto under = qp.DetectExtended(Ext(f, "A C within 2"));
  ASSERT_TRUE(under.ok()) << under.status();
  EXPECT_TRUE(under->empty());
}

TEST(ExtendedDetectTest, WithinSmallerThanEveryGapIsEmptyNotAnError) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  auto m = qp.DetectExtended(Ext(f, "(A|B) C within 0"));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->empty());
}

TEST(ExtendedDetectTest, GapBoundIsInclusive) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  auto at = qp.DetectExtended(Ext(f, "A C gap <= 3"));
  ASSERT_TRUE(at.ok()) << at.status();
  EXPECT_EQ(*at, (Matches{M(1, {1, 4})}));
  auto under = qp.DetectExtended(Ext(f, "A C gap <= 2"));
  ASSERT_TRUE(under.ok()) << under.status();
  EXPECT_TRUE(under->empty());
}

TEST(ExtendedDetectTest, GapAppliesInsideKleeneChains) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // B+ gap <= 0: single-element chains have no adjacent pair to test, but
  // the chain [2,3] has gap 1 and is pruned.
  auto m = qp.DetectExtended(Ext(f, "B+ gap <= 0"));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(*m, (Matches{M(1, {2}), M(1, {3})}));
}

TEST(ExtendedDetectTest, SingleEventTraceMatchesSinglePositiveOnly) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  auto one = qp.DetectExtended(Ext(f, "A"));
  ASSERT_TRUE(one.ok()) << one.status();
  EXPECT_EQ(*one, (Matches{M(1, {1}), M(2, {12}), M(3, {20})}));
  auto two = qp.DetectExtended(Ext(f, "D B"));
  ASSERT_TRUE(two.ok()) << two.status();
  EXPECT_TRUE(two->empty());
}

TEST(ExtendedDetectTest, PlainPatternsDelegateToDetectExactly) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // Plain sequences take the classic pair-join path: identical matches in
  // the identical (Detect) order, not the canonical extended order.
  auto direct = qp.Detect(NamedPattern(f, {"A", "C"}));
  auto extended = qp.DetectExtended(Ext(f, "A C"));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(*extended, *direct);
}

TEST(ExtendedDetectTest, PatternBoundsCombineWithConstraints) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // The tighter of the pattern-embedded and caller-supplied bounds wins.
  DetectionConstraints loose;
  loose.max_span = 100;
  auto kept = qp.DetectExtended(Ext(f, "(A|B) C within 3"), loose);
  ASSERT_TRUE(kept.ok()) << kept.status();
  EXPECT_EQ(*kept, (Matches{M(1, {1, 4}), M(1, {2, 4})}));
  DetectionConstraints tight;
  tight.max_span = 2;
  auto narrowed = qp.DetectExtended(Ext(f, "(A|B) C within 3"), tight);
  ASSERT_TRUE(narrowed.ok()) << narrowed.status();
  EXPECT_EQ(*narrowed, (Matches{M(1, {2, 4})}));
}

TEST(ExtendedDetectTest, ComplianceTemplatesAreViolationWitnesses) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  // response(A, B): A occurrences never followed by a B. A@1 is followed by
  // B@2; A@12 and A@20 are not.
  auto response = qp.DetectExtended(Ext(f, "response(A, B)"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(*response, (Matches{M(2, {12}), M(3, {20})}));
  // precedence(C, A): A occurrences never preceded by a C. A@12 has C@10
  // before it; A@1 and A@20 do not.
  auto precedence = qp.DetectExtended(Ext(f, "precedence(C, A)"));
  ASSERT_TRUE(precedence.ok()) << precedence.status();
  EXPECT_EQ(*precedence, (Matches{M(1, {1}), M(3, {20})}));
  // absence(B): every B occurrence is a violation witness.
  auto absence = qp.DetectExtended(Ext(f, "absence(B)"));
  ASSERT_TRUE(absence.ok()) << absence.status();
  EXPECT_EQ(*absence, (Matches{M(1, {2}), M(1, {3})}));
}

TEST(ExtendedDetectTest, ExpiredDeadlineAborts) {
  Fixture f(ExtendedLog());
  QueryProcessor qp(f.index.get());
  DetectionConstraints constraints;
  constraints.deadline = Deadline::After(0);
  auto m = qp.DetectExtended(Ext(f, "(A|B) C"), constraints);
  EXPECT_TRUE(m.status().IsAborted());
}

TEST(ExtendedDetectTest, UnsupportedUnderSkipTillAnyMatch) {
  Fixture f(ExtendedLog(), Policy::kSkipTillAnyMatch);
  QueryProcessor qp(f.index.get());
  // STAM has no oracle-defined extended composition; only plain patterns
  // (which delegate to Detect) are allowed.
  EXPECT_TRUE(qp.DetectExtended(Ext(f, "(A|B) C")).status().IsUnsupported());
  EXPECT_TRUE(qp.DetectExtended(Ext(f, "A C")).ok());
}

}  // namespace
}  // namespace seqdet::query
