#include <sstream>

#include "gtest/gtest.h"
#include "log/activity_dictionary.h"
#include "log/csv_io.h"
#include "log/event_log.h"
#include "log/log_statistics.h"
#include "log/xes_io.h"

namespace seqdet::eventlog {
namespace {

// ---------------------------------------------------------------------------
// ActivityDictionary
// ---------------------------------------------------------------------------

TEST(ActivityDictionaryTest, InternAssignsDenseIds) {
  ActivityDictionary dict;
  EXPECT_EQ(dict.Intern("A"), 0u);
  EXPECT_EQ(dict.Intern("B"), 1u);
  EXPECT_EQ(dict.Intern("A"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ActivityDictionaryTest, LookupAndName) {
  ActivityDictionary dict;
  ActivityId a = dict.Intern("submit");
  EXPECT_EQ(dict.Lookup("submit"), a);
  EXPECT_EQ(dict.Lookup("unknown"), kInvalidActivity);
  EXPECT_EQ(dict.Name(a), "submit");
  EXPECT_TRUE(dict.Contains("submit"));
  EXPECT_FALSE(dict.Contains("nope"));
}

// ---------------------------------------------------------------------------
// Trace / EventLog
// ---------------------------------------------------------------------------

TEST(TraceTest, SortByTimestamp) {
  Trace t{1, {{0, 5}, {1, 2}, {2, 9}}};
  EXPECT_FALSE(t.IsSorted());
  t.SortByTimestamp();
  EXPECT_TRUE(t.IsSorted());
  EXPECT_EQ(t.events[0].ts, 2);
  EXPECT_EQ(t.events[2].ts, 9);
}

TEST(TraceTest, DistinctActivities) {
  Trace t{1, {{0, 1}, {1, 2}, {0, 3}, {2, 4}}};
  EXPECT_EQ(t.DistinctActivities(), 3u);
}

TEST(EventLogTest, AppendGroupsByTrace) {
  EventLog log;
  log.Append(10, "A", 1);
  log.Append(11, "B", 1);
  log.Append(10, "B", 2);
  EXPECT_EQ(log.num_traces(), 2u);
  EXPECT_EQ(log.num_events(), 3u);
  EXPECT_EQ(log.num_activities(), 2u);
  const Trace* t = log.FindTrace(10);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->size(), 2u);
  EXPECT_EQ(log.FindTrace(99), nullptr);
}

TEST(EventLogTest, AddTraceMergesSameId) {
  EventLog log;
  log.AddTrace(Trace{5, {{0, 1}}});
  log.AddTrace(Trace{5, {{1, 2}}});
  EXPECT_EQ(log.num_traces(), 1u);
  EXPECT_EQ(log.FindTrace(5)->size(), 2u);
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, RoundTrip) {
  EventLog log;
  log.Append(1, "start", 10);
  log.Append(1, "end", 20);
  log.Append(2, "start", 5);
  std::ostringstream out;
  ASSERT_TRUE(WriteCsvLog(log, out).ok());
  std::istringstream in(out.str());
  auto read = ReadCsvLog(in);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->num_traces(), 2u);
  EXPECT_EQ(read->num_events(), 3u);
  const Trace* t1 = read->FindTrace(1);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(read->dictionary().Name(t1->events[0].activity), "start");
  EXPECT_EQ(t1->events[1].ts, 20);
}

TEST(CsvTest, HeaderAndCommentsSkipped) {
  std::istringstream in(
      "trace_id,activity,timestamp\n"
      "# comment line\n"
      "\n"
      "1,A,3\n");
  auto log = ReadCsvLog(in);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(log->num_events(), 1u);
}

TEST(CsvTest, ExtraColumnsIgnored) {
  std::istringstream in("1,A,3,ignored,metadata\n");
  auto log = ReadCsvLog(in);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->num_events(), 1u);
}

TEST(CsvTest, BadTimestampRejected) {
  std::istringstream in("1,A,xyz\n");
  auto log = ReadCsvLog(in);
  ASSERT_FALSE(log.ok());
  EXPECT_TRUE(log.status().IsInvalidArgument());
}

TEST(CsvTest, TooFewFieldsRejected) {
  std::istringstream in("1,A\n");
  EXPECT_FALSE(ReadCsvLog(in).ok());
}

TEST(CsvTest, TracesSortedOnRead) {
  std::istringstream in("1,B,9\n1,A,2\n");
  auto log = ReadCsvLog(in);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->FindTrace(1)->IsSorted());
}

// ---------------------------------------------------------------------------
// XES
// ---------------------------------------------------------------------------

TEST(XesTest, ParsesMinimalDocument) {
  std::istringstream in(R"(<?xml version="1.0"?>
<log>
  <extension name="Concept" prefix="concept" uri="http://x"/>
  <trace>
    <string key="concept:name" value="42"/>
    <event>
      <string key="concept:name" value="register"/>
      <int key="time:timestamp" value="100"/>
    </event>
    <event>
      <string key="concept:name" value="approve"/>
      <int key="time:timestamp" value="200"/>
    </event>
  </trace>
</log>)");
  auto log = ReadXesLog(in);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(log->num_traces(), 1u);
  const Trace* t = log->FindTrace(42);
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->size(), 2u);
  EXPECT_EQ(log->dictionary().Name(t->events[0].activity), "register");
  EXPECT_EQ(t->events[1].ts, 200);
}

TEST(XesTest, IsoDateTimestamps) {
  std::istringstream in(R"(<log><trace>
    <string key="concept:name" value="case_7"/>
    <event>
      <string key="concept:name" value="A"/>
      <date key="time:timestamp" value="1970-01-01T00:00:01.500Z"/>
    </event>
  </trace></log>)");
  auto log = ReadXesLog(in);
  ASSERT_TRUE(log.ok()) << log.status();
  const Trace* t = log->FindTrace(7);  // trailing integer of "case_7"
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->events[0].ts, 1500);
}

TEST(XesTest, MissingTimestampFallsBackToPosition) {
  std::istringstream in(R"(<log><trace>
    <event><string key="concept:name" value="A"/></event>
    <event><string key="concept:name" value="B"/></event>
  </trace></log>)");
  auto log = ReadXesLog(in);
  ASSERT_TRUE(log.ok()) << log.status();
  const Trace& t = log->traces()[0];
  EXPECT_EQ(t.events[0].ts, 0);
  EXPECT_EQ(t.events[1].ts, 1);
}

TEST(XesTest, EscapedAttributeValues) {
  std::istringstream in(R"(<log><trace>
    <event><string key="concept:name" value="a &amp; b &lt;x&gt;"/>
    <int key="time:timestamp" value="1"/></event>
  </trace></log>)");
  auto log = ReadXesLog(in);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(log->dictionary().Name(log->traces()[0].events[0].activity),
            "a & b <x>");
}

TEST(XesTest, RoundTrip) {
  EventLog original;
  original.Append(3, "first", 10);
  original.Append(3, "second", 25);
  original.Append(4, "first", 7);
  std::ostringstream out;
  ASSERT_TRUE(WriteXesLog(original, out).ok());
  std::istringstream in(out.str());
  auto read = ReadXesLog(in);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->num_traces(), 2u);
  const Trace* t = read->FindTrace(3);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->events[1].ts, 25);
  EXPECT_EQ(read->dictionary().Name(t->events[1].activity), "second");
}

TEST(XesTest, LifecycleFilterKeepsCompletionsOnly) {
  // A start+complete pair per task, plus one event without the attribute.
  std::istringstream in(R"(<log><trace>
    <event><string key="concept:name" value="A"/>
      <string key="lifecycle:transition" value="start"/>
      <int key="time:timestamp" value="1"/></event>
    <event><string key="concept:name" value="A"/>
      <string key="lifecycle:transition" value="COMPLETE"/>
      <int key="time:timestamp" value="5"/></event>
    <event><string key="concept:name" value="B"/>
      <int key="time:timestamp" value="9"/></event>
  </trace></log>)");
  XesReadOptions options;
  options.lifecycle_filter = "complete";
  auto log = ReadXesLog(in, options);
  ASSERT_TRUE(log.ok()) << log.status();
  const Trace& t = log->traces()[0];
  ASSERT_EQ(t.size(), 2u);  // start event dropped, case-insensitive match
  EXPECT_EQ(t.events[0].ts, 5);
  EXPECT_EQ(log->dictionary().Name(t.events[1].activity), "B");
}

TEST(XesTest, NoLifecycleFilterKeepsEverything) {
  std::istringstream in(R"(<log><trace>
    <event><string key="concept:name" value="A"/>
      <string key="lifecycle:transition" value="start"/>
      <int key="time:timestamp" value="1"/></event>
  </trace></log>)");
  auto log = ReadXesLog(in);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->num_events(), 1u);
}

TEST(XesTest, EventWithoutNameRejected) {
  std::istringstream in(R"(<log><trace>
    <event><int key="time:timestamp" value="1"/></event>
  </trace></log>)");
  EXPECT_FALSE(ReadXesLog(in).ok());
}

TEST(Iso8601Test, ParsesOffsets) {
  int64_t ms;
  ASSERT_TRUE(ParseIso8601Millis("1970-01-01T01:00:00.000+01:00", &ms));
  EXPECT_EQ(ms, 0);
  ASSERT_TRUE(ParseIso8601Millis("1970-01-02T00:00:00Z", &ms));
  EXPECT_EQ(ms, 86400000);
  ASSERT_TRUE(ParseIso8601Millis("1969-12-31T23:59:59Z", &ms));
  EXPECT_EQ(ms, -1000);
}

TEST(Iso8601Test, LeapYearHandled) {
  int64_t feb29, mar01;
  ASSERT_TRUE(ParseIso8601Millis("2020-02-29T00:00:00Z", &feb29));
  ASSERT_TRUE(ParseIso8601Millis("2020-03-01T00:00:00Z", &mar01));
  EXPECT_EQ(mar01 - feb29, 86400000);
}

TEST(Iso8601Test, RejectsGarbage) {
  int64_t ms;
  EXPECT_FALSE(ParseIso8601Millis("not a date", &ms));
  EXPECT_FALSE(ParseIso8601Millis("2020-13-01T00:00:00Z", &ms));
}

// ---------------------------------------------------------------------------
// LogStatistics
// ---------------------------------------------------------------------------

TEST(LogStatisticsTest, ComputesTable4Numbers) {
  EventLog log;
  log.Append(1, "A", 1);
  log.Append(1, "B", 2);
  log.Append(1, "A", 3);
  log.Append(2, "A", 1);
  auto stats = LogStatistics::Compute(log);
  EXPECT_EQ(stats.num_traces, 2u);
  EXPECT_EQ(stats.num_events, 4u);
  EXPECT_EQ(stats.num_activities, 2u);
  EXPECT_EQ(stats.min_events_per_trace, 1u);
  EXPECT_EQ(stats.max_events_per_trace, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_events_per_trace, 2.0);
  EXPECT_EQ(stats.events_per_trace.count(), 2u);
  EXPECT_EQ(stats.activities_per_trace.count(), 2u);
}

TEST(LogStatisticsTest, EmptyLog) {
  EventLog log;
  auto stats = LogStatistics::Compute(log);
  EXPECT_EQ(stats.num_traces, 0u);
  EXPECT_EQ(stats.min_events_per_trace, 0u);
  EXPECT_FALSE(stats.SummaryRow("empty").empty());
}

}  // namespace
}  // namespace seqdet::eventlog
