#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/pair_extraction.h"

namespace seqdet::index {
namespace {

using eventlog::ActivityId;
using eventlog::Event;
using eventlog::Timestamp;
using eventlog::Trace;

// Builds a trace from (activity, ts) pairs.
Trace MakeTrace(eventlog::TraceId id,
                std::initializer_list<std::pair<ActivityId, Timestamp>>
                    events) {
  Trace t;
  t.id = id;
  for (auto& [a, ts] : events) t.events.push_back(Event{a, ts});
  return t;
}

// Canonical form for comparing extractor output regardless of emit order.
std::set<std::tuple<ActivityId, ActivityId, Timestamp, Timestamp>> Canon(
    const std::vector<PairRow>& rows) {
  std::set<std::tuple<ActivityId, ActivityId, Timestamp, Timestamp>> out;
  for (const PairRow& r : rows) {
    out.emplace(r.pair.first, r.pair.second, r.occurrence.ts_first,
                r.occurrence.ts_second);
  }
  EXPECT_EQ(out.size(), rows.size()) << "duplicate pair rows emitted";
  return out;
}

/// Reference STNM extractor: per type pair, an independent greedy scan over
/// the trace. O(n * l^2) but obviously correct — the ground truth for the
/// property tests.
std::vector<PairRow> ReferenceStnm(const Trace& trace) {
  std::set<ActivityId> types;
  for (const Event& e : trace.events) types.insert(e.activity);
  std::vector<PairRow> out;
  for (ActivityId x : types) {
    for (ActivityId y : types) {
      Timestamp pending_first = 0;
      bool have_first = false;
      for (const Event& e : trace.events) {
        if (!have_first) {
          if (e.activity == x) {
            pending_first = e.ts;
            have_first = true;
          }
          continue;
        }
        if (e.activity == y && e.ts > pending_first) {
          out.push_back(PairRow{EventTypePair{x, y},
                                PairOccurrence{trace.id, pending_first,
                                               e.ts}});
          have_first = false;  // restart the scan after this completion
        }
      }
    }
  }
  return out;
}

// The worked example of §2.1 / Table 3 of the paper:
// trace <(A,1), (A,2), (B,3), (A,4), (B,5), (A,6)>.
constexpr ActivityId A = 0, B = 1, C = 2;
Trace PaperTrace() {
  return MakeTrace(7, {{A, 1}, {A, 2}, {B, 3}, {A, 4}, {B, 5}, {A, 6}});
}

TEST(ScExtractionTest, PaperExample) {
  std::vector<PairRow> rows;
  ExtractScPairs(PaperTrace(), &rows);
  // Consecutive pairs: (A,A):(1,2), (A,B):(2,3), (B,A):(3,4), (A,B):(4,5),
  // (B,A):(5,6). Table 3 lists SC (B,A) as "(3,4),(4,5)"; (4,5) is the
  // (A,B) pair at those positions, so we treat that as a typo (see
  // DESIGN.md) and expect the consecutive semantics.
  auto canon = Canon(rows);
  std::set<std::tuple<ActivityId, ActivityId, Timestamp, Timestamp>>
      expected = {{A, A, 1, 2}, {A, B, 2, 3}, {B, A, 3, 4},
                  {A, B, 4, 5}, {B, A, 5, 6}};
  EXPECT_EQ(canon, expected);
}

TEST(ScExtractionTest, EmptyAndSingleton) {
  std::vector<PairRow> rows;
  ExtractScPairs(MakeTrace(1, {}), &rows);
  EXPECT_TRUE(rows.empty());
  ExtractScPairs(MakeTrace(1, {{A, 5}}), &rows);
  EXPECT_TRUE(rows.empty());
}

// Each STNM flavor must reproduce Table 3 exactly.
class StnmFlavorTest : public ::testing::TestWithParam<ExtractionMethod> {};

TEST_P(StnmFlavorTest, PaperTable3) {
  std::vector<PairRow> rows;
  ExtractPairs(PaperTrace(), Policy::kSkipTillNextMatch, GetParam(), &rows);
  auto canon = Canon(rows);
  std::set<std::tuple<ActivityId, ActivityId, Timestamp, Timestamp>>
      expected = {
          {A, A, 1, 2}, {A, A, 4, 6},            // (A,A)
          {B, A, 3, 4}, {B, A, 5, 6},            // (B,A)
          {B, B, 3, 5},                          // (B,B)
          {A, B, 1, 3}, {A, B, 4, 5},            // (A,B)
      };
  EXPECT_EQ(canon, expected);
}

TEST_P(StnmFlavorTest, AabExampleFromIntroduction) {
  // §2.1: log <AAABAACB>. The greedy pair semantics yields
  // (A,A): (1,2),(3,5) and (A,B): (1,4),(5,8).
  Trace trace = MakeTrace(1, {{A, 1}, {A, 2}, {A, 3}, {B, 4},
                              {A, 5}, {A, 6}, {C, 7}, {B, 8}});
  std::vector<PairRow> rows;
  ExtractPairs(trace, Policy::kSkipTillNextMatch, GetParam(), &rows);
  auto canon = Canon(rows);
  EXPECT_TRUE(canon.count({A, A, 1, 2}));
  EXPECT_TRUE(canon.count({A, A, 3, 5}));
  EXPECT_TRUE(canon.count({A, B, 1, 4}));
  EXPECT_TRUE(canon.count({A, B, 5, 8}));
}

TEST_P(StnmFlavorTest, SingleActivityRepetition) {
  Trace trace = MakeTrace(1, {{A, 1}, {A, 2}, {A, 3}, {A, 4}, {A, 5}});
  std::vector<PairRow> rows;
  ExtractPairs(trace, Policy::kSkipTillNextMatch, GetParam(), &rows);
  // Greedy non-overlapping self pairs: (1,2), (3,4); 5 stays pending.
  auto canon = Canon(rows);
  std::set<std::tuple<ActivityId, ActivityId, Timestamp, Timestamp>>
      expected = {{A, A, 1, 2}, {A, A, 3, 4}};
  EXPECT_EQ(canon, expected);
}

TEST_P(StnmFlavorTest, NoPairsForSingletonTrace) {
  std::vector<PairRow> rows;
  ExtractPairs(MakeTrace(1, {{A, 1}}), Policy::kSkipTillNextMatch, GetParam(),
               &rows);
  EXPECT_TRUE(rows.empty());
  ExtractPairs(MakeTrace(1, {}), Policy::kSkipTillNextMatch, GetParam(),
               &rows);
  EXPECT_TRUE(rows.empty());
}

TEST_P(StnmFlavorTest, AllDistinctActivities) {
  Trace trace = MakeTrace(1, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  std::vector<PairRow> rows;
  ExtractPairs(trace, Policy::kSkipTillNextMatch, GetParam(), &rows);
  // Every ordered pair (i, j) with i before j completes exactly once:
  // C(4,2) = 6 pairs.
  EXPECT_EQ(rows.size(), 6u);
  EXPECT_EQ(Canon(rows), Canon(ReferenceStnm(trace)));
}

TEST_P(StnmFlavorTest, MatchesReferenceOnRandomTraces) {
  Rng rng(1234 + static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 60; ++round) {
    size_t n = 1 + rng.NextBounded(60);
    size_t l = 1 + rng.NextBounded(8);
    Trace trace;
    trace.id = round;
    Timestamp ts = 0;
    for (size_t i = 0; i < n; ++i) {
      ts += 1 + static_cast<Timestamp>(rng.NextBounded(3));
      trace.events.push_back(
          Event{static_cast<ActivityId>(rng.NextBounded(l)), ts});
    }
    std::vector<PairRow> rows;
    ExtractPairs(trace, Policy::kSkipTillNextMatch, GetParam(), &rows);
    EXPECT_EQ(Canon(rows), Canon(ReferenceStnm(trace)))
        << "round " << round << " n=" << n << " l=" << l;
  }
}

TEST_P(StnmFlavorTest, PairsNeverOverlapProperty) {
  Rng rng(777);
  for (int round = 0; round < 20; ++round) {
    size_t n = 10 + rng.NextBounded(100);
    Trace trace;
    trace.id = round;
    for (size_t i = 0; i < n; ++i) {
      trace.events.push_back(Event{
          static_cast<ActivityId>(rng.NextBounded(5)),
          static_cast<Timestamp>(i + 1)});
    }
    std::vector<PairRow> rows;
    ExtractPairs(trace, Policy::kSkipTillNextMatch, GetParam(), &rows);
    // Per (a, b): completions sorted by first ts must not overlap, and
    // every completion must have ts_first < ts_second.
    std::map<EventTypePair, std::vector<PairOccurrence>> grouped;
    for (const PairRow& r : rows) grouped[r.pair].push_back(r.occurrence);
    for (auto& [pair, occurrences] : grouped) {
      std::sort(occurrences.begin(), occurrences.end());
      for (size_t i = 0; i < occurrences.size(); ++i) {
        EXPECT_LT(occurrences[i].ts_first, occurrences[i].ts_second);
        if (i > 0) {
          EXPECT_GT(occurrences[i].ts_first, occurrences[i - 1].ts_second)
              << "overlapping completions for pair (" << pair.first << ","
              << pair.second << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFlavors, StnmFlavorTest,
                         ::testing::Values(ExtractionMethod::kParsing,
                                           ExtractionMethod::kIndexing,
                                           ExtractionMethod::kState),
                         [](const auto& info) {
                           return ExtractionMethodName(info.param);
                         });

TEST(StnmCrossFlavorTest, AllThreeFlavorsAgreeOnProcessLikeTraces) {
  Rng rng(31);
  for (int round = 0; round < 30; ++round) {
    // Traces with heavy repetition (loop-like) stress the greedy logic.
    Trace trace;
    trace.id = round;
    Timestamp ts = 0;
    size_t blocks = 2 + rng.NextBounded(6);
    for (size_t b = 0; b < blocks; ++b) {
      for (ActivityId a : {A, B, C}) {
        if (rng.NextBool(0.7)) {
          ts += 1;
          trace.events.push_back(Event{a, ts});
        }
      }
    }
    std::vector<PairRow> parsing, indexing, state;
    ExtractStnmParsing(trace, &parsing);
    ExtractStnmIndexing(trace, &indexing);
    ExtractStnmState(trace, &state);
    EXPECT_EQ(Canon(parsing), Canon(indexing)) << "round " << round;
    EXPECT_EQ(Canon(indexing), Canon(state)) << "round " << round;
  }
}

TEST(StreamingStateExtractorTest, MatchesBatchExtraction) {
  Rng rng(55);
  for (int round = 0; round < 30; ++round) {
    Trace trace;
    trace.id = 9;
    size_t n = 1 + rng.NextBounded(50);
    for (size_t i = 0; i < n; ++i) {
      trace.events.push_back(Event{
          static_cast<ActivityId>(rng.NextBounded(6)),
          static_cast<Timestamp>(i + 1)});
    }
    StnmStateExtractor streaming(trace.id);
    std::vector<PairRow> streamed;
    for (const Event& e : trace.events) {
      streaming.Add(e);
      // Drain at arbitrary points; results must accumulate to the same set.
      if (rng.NextBool(0.3)) streaming.DrainCompleted(&streamed);
    }
    streaming.DrainCompleted(&streamed);
    std::vector<PairRow> batch;
    ExtractStnmState(trace, &batch);
    EXPECT_EQ(Canon(streamed), Canon(batch)) << "round " << round;
  }
}

TEST(StreamingStateExtractorTest, DrainIsIncremental) {
  StnmStateExtractor streaming(1);
  streaming.Add(Event{A, 1});
  streaming.Add(Event{B, 2});
  std::vector<PairRow> first;
  streaming.DrainCompleted(&first);
  EXPECT_EQ(first.size(), 1u);  // (A,B,1,2)
  std::vector<PairRow> second;
  streaming.DrainCompleted(&second);
  EXPECT_TRUE(second.empty());  // nothing new
  streaming.Add(Event{A, 3});  // completes (B,A,2,3) and (A,A,1,3)
  streaming.DrainCompleted(&second);
  ASSERT_EQ(second.size(), 2u);
  std::set<EventTypePair> pairs = {second[0].pair, second[1].pair};
  EXPECT_TRUE(pairs.count(EventTypePair{B, A}));
  EXPECT_TRUE(pairs.count(EventTypePair{A, A}));
}

TEST(ExtractPairsTest, ScPolicyIgnoresMethod) {
  Trace trace = PaperTrace();
  std::vector<PairRow> a, b;
  ExtractPairs(trace, Policy::kStrictContiguity, ExtractionMethod::kParsing,
               &a);
  ExtractPairs(trace, Policy::kStrictContiguity, ExtractionMethod::kState,
               &b);
  EXPECT_EQ(Canon(a), Canon(b));
  EXPECT_EQ(a.size(), trace.size() - 1);
}

TEST(ExtractionNamesTest, Names) {
  EXPECT_STREQ(ExtractionMethodName(ExtractionMethod::kParsing), "Parsing");
  EXPECT_STREQ(ExtractionMethodName(ExtractionMethod::kIndexing), "Indexing");
  EXPECT_STREQ(ExtractionMethodName(ExtractionMethod::kState), "State");
  EXPECT_STREQ(PolicyName(Policy::kStrictContiguity), "SC");
  EXPECT_STREQ(PolicyName(Policy::kSkipTillNextMatch), "STNM");
}

}  // namespace
}  // namespace seqdet::index
