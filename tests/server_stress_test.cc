// Serving-layer stress: concurrent keep-alive HTTP clients hammering every
// route with a mix of good, bad, shed-prone and deadline-capped requests,
// while a writer appends trace batches and the background maintenance
// service folds aggressively. Run it under TSan (tools/check_tsan.sh
// includes this binary) to certify the worker-pool / admission / drain
// protocol; the final assertions certify that overload never turns into a
// hang or an invalid response, and that the index survives with its
// invariants intact.
//
// Duration scales with SEQDET_STRESS_SECONDS (default 2).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/maintenance.h"
#include "index/sequence_index.h"
#include "log/event_log.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "storage/database.h"

namespace seqdet::server {
namespace {

using eventlog::EventLog;
using eventlog::Timestamp;

constexpr size_t kActivities = 8;
constexpr size_t kClients = 4;

int StressSeconds() {
  if (const char* env = std::getenv("SEQDET_STRESS_SECONDS")) {
    return std::atoi(env);
  }
  return 2;
}

EventLog MakeBatch(Rng* rng, uint64_t first_trace, size_t traces) {
  EventLog batch;
  for (size_t t = 0; t < traces; ++t) {
    uint64_t trace = first_trace + t;
    size_t len = static_cast<size_t>(rng->NextInRange(5, 30));
    Timestamp ts = 0;
    for (size_t i = 0; i < len; ++i) {
      ts += rng->NextInRange(1, 9);
      batch.Append(trace, "a" + std::to_string(rng->NextBounded(kActivities)),
                   ts);
    }
  }
  batch.SortAllTraces();
  return batch;
}

std::string Activity(Rng* rng) {
  return "a" + std::to_string(rng->NextBounded(kActivities));
}

TEST(ServerStressTest, ConcurrentClientsWritesAndFolding) {
  storage::DbOptions db_options;
  db_options.table.in_memory = true;
  db_options.table.use_wal = false;
  auto db = std::move(storage::Database::Open("", db_options)).value();

  index::IndexOptions options;
  options.policy = index::Policy::kSkipTillNextMatch;
  options.num_threads = 2;
  options.cache_bytes = 1u << 20;
  options.posting_block_bytes = 128;
  // Fold nearly every append so folds overlap the serving traffic.
  options.maintenance.auto_fold = true;
  options.maintenance.check_interval_ms = 5;
  options.maintenance.min_pending_bytes = 1;
  options.maintenance.min_pending_ops = 1;
  auto index =
      std::move(index::SequenceIndex::Open(db.get(), options)).value();
  ASSERT_NE(index->maintenance(), nullptr);

  // Seed batch so every activity name resolves before clients start.
  Rng writer_rng(7);
  uint64_t next_trace = 0;
  {
    EventLog batch = MakeBatch(&writer_rng, next_trace, 32);
    next_trace += 32;
    ASSERT_TRUE(index->Update(batch).ok());
  }
  ASSERT_EQ(index->dictionary().size(), kActivities);

  // A small in-flight budget and keep-alive limit so admission control and
  // reconnects both trigger under load.
  ServingOptions serving;
  serving.max_inflight = 2;
  serving.debug_routes = true;
  QueryService service(index.get(), serving);
  HttpServerOptions http_options;
  http_options.num_threads = 4;
  http_options.max_keepalive_requests = 16;
  HttpServer http(http_options);
  service.RegisterRoutes(&http);
  ASSERT_TRUE(http.Start(0).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches_written{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> shed_seen{0};
  std::atomic<uint64_t> deadline_seen{0};

  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EventLog batch = MakeBatch(&writer_rng, next_trace, 8);
      next_trace += 8;
      auto stats = index->Update(batch);
      ASSERT_TRUE(stats.ok()) << stats.status();
      batches_written.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Clients: every route, valid and invalid inputs, occasional tiny
  // deadlines, an occupy-the-slot sleeper to provoke 503s. The invariant
  // is the response-status contract — overload and cancellation must map
  // to 503/504, never to a hang, a tear, or a 5xx surprise.
  auto client_loop = [&](uint64_t seed) {
    Rng rng(seed);
    HttpClient client(http.port());
    while (!stop.load(std::memory_order_relaxed)) {
      std::string target;
      switch (rng.NextBounded(10)) {
        case 0:
          target = "/health";
          break;
        case 1:
          target = "/info";
          break;
        case 2:
          target = "/nope";  // 404
          break;
        case 3:
          target = "/detect?q=ghost_activity";  // 400
          break;
        case 4:
          target = "/stats?q=" +
                   HttpClient::UrlEncode(Activity(&rng) + " -> " +
                                         Activity(&rng));
          break;
        case 5:
          target = "/continue?q=" + HttpClient::UrlEncode(Activity(&rng)) +
                   "&mode=fast";
          break;
        case 6:
          target = "/debug/sleep?ms=5";  // occupies an in-flight slot
          break;
        case 7:
          // A deadline so small it may expire mid-join (or not — both are
          // valid; the contract is 200 xor 504).
          target = "/detect?q=" +
                   HttpClient::UrlEncode(Activity(&rng) + " -> " +
                                         Activity(&rng)) +
                   "&deadline_ms=1";
          break;
        default:
          target = "/detect?q=" +
                   HttpClient::UrlEncode(Activity(&rng) + " -> " +
                                         Activity(&rng) + " -> " +
                                         Activity(&rng));
          break;
      }
      auto response = client.Get(target);
      ASSERT_TRUE(response.ok())
          << target << ": " << response.status().ToString();
      int status = response->status;
      ASSERT_TRUE(status == 200 || status == 400 || status == 404 ||
                  status == 503 || status == 504)
          << target << " -> " << status << " " << response->body;
      if (status == 503) {
        shed_seen.fetch_add(1, std::memory_order_relaxed);
        ASSERT_EQ(response->headers.count("retry-after"), 1u);
      }
      if (status == 504) deadline_seen.fetch_add(1, std::memory_order_relaxed);
      responses.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back(client_loop, 101 + i);
  }

  std::this_thread::sleep_for(std::chrono::seconds(StressSeconds()));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  writer.join();

  // Drain-stop while the index is still live, then quiesce maintenance.
  http.Stop();
  EXPECT_TRUE(index->maintenance()->WaitIdle(/*timeout_ms=*/30000));

  HttpServerStats http_stats = http.stats();
  ServingStatsSnapshot stats = service.serving_stats();
  EXPECT_GT(responses.load(), 0u);
  EXPECT_GT(batches_written.load(), 0u);
  EXPECT_GE(http_stats.requests_served, responses.load());
  EXPECT_EQ(http_stats.active_connections, 0u);
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.shed_total, shed_seen.load());
  uint64_t deadline_total = 0;
  for (const auto& route : stats.routes) {
    EXPECT_GE(route.inflight, 0);
    deadline_total += route.deadline_exceeded;
  }
  EXPECT_EQ(deadline_total, deadline_seen.load());

  index::MaintenanceStats m = index->maintenance_stats();
  EXPECT_GT(m.folds_run, 0u) << "service never folded — thresholds broken?";
  EXPECT_EQ(m.errors, 0u) << m.last_error;

  // End-state correctness: serving under churn must not corrupt the index.
  auto report = index->CheckConsistency();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << (report->violations.empty()
                                    ? ""
                                    : report->violations.front());
}

}  // namespace
}  // namespace seqdet::server
