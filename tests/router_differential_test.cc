// Router differential harness: a ShardRouter over N trace-hash shards
// versus one QueryService over the unsharded index, byte-for-byte.
//
// The merge contract (DESIGN.md §15) is not "equivalent results" but
// *identical bytes*: every /detect, /stats and /continue response through
// the router — match order, derived doubles, serialization — must equal
// the single process's response exactly, at every shard count. The
// harness drives seeded random patterns (plain and extended grammar)
// through both sides over in-process HTTP servers at 1, 2, 4 and 8
// shards; shard count 1 pins the degenerate case (the merge path itself,
// with nothing to merge).
//
// Replay a failing seed with SEQDET_DIFF_SEED=<seed>; scale the corpus
// with SEQDET_DIFF_PATTERNS (default 1000 detect patterns per shard
// count, a quarter of that for each of the other axes).

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/generators.h"
#include "gtest/gtest.h"
#include "index/sequence_index.h"
#include "index/trace_shard.h"
#include "log/event_log.h"
#include "query/pattern.h"
#include "query/query_processor.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "server/shard_router.h"
#include "storage/database.h"

namespace seqdet {
namespace {

using eventlog::ActivityId;
using eventlog::EventLog;
using index::IndexOptions;
using index::Policy;
using index::SequenceIndex;
using query::ExtendedPattern;
using query::PatternElement;

uint64_t DiffSeed() {
  if (const char* env = std::getenv("SEQDET_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20210323;
}

size_t PatternsPerConfig() {
  if (const char* env = std::getenv("SEQDET_DIFF_PATTERNS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1000;
}

EventLog DiffLog(uint64_t seed) {
  datagen::RandomLogConfig config;
  config.num_traces = 120;
  config.max_events_per_trace = 40;
  config.num_activities = 10;
  config.seed = seed;
  config.mean_gap = 5;
  config.activity_skew = 0.3;
  return datagen::GenerateRandomLog(config);
}

/// The same partitioning `seqdet shard-split` performs: traces by hash,
/// every partition pre-interned with the full dictionary so activity ids
/// are identical across shards.
std::vector<EventLog> PartitionLog(const EventLog& log, size_t num_shards) {
  std::vector<EventLog> parts(num_shards);
  for (auto& part : parts) {
    for (const auto& name : log.dictionary().names()) {
      part.dictionary().Intern(name);
    }
  }
  for (const auto& trace : log.traces()) {
    parts[index::ShardOfTrace(trace.id, num_shards)].AddTrace(trace);
  }
  return parts;
}

/// One in-process "process": in-memory index + QueryService + HttpServer.
struct Node {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<SequenceIndex> index;
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::HttpServer> http;

  explicit Node(const EventLog& log) {
    storage::DbOptions db_options;
    db_options.table.in_memory = true;
    db_options.table.use_wal = false;
    db = std::move(storage::Database::Open("", db_options)).value();
    IndexOptions options;
    options.policy = Policy::kSkipTillNextMatch;
    options.num_threads = 1;
    options.posting_block_bytes = 96;
    index = std::move(SequenceIndex::Open(db.get(), options)).value();
    auto stats = index->Update(log);
    EXPECT_TRUE(stats.ok()) << stats.status();
    service = std::make_unique<server::QueryService>(index.get());
    http = std::make_unique<server::HttpServer>();
    service->RegisterRoutes(http.get());
    EXPECT_TRUE(http->Start(0).ok());
  }
  ~Node() { http->Stop(); }
};

/// The full comparison rig: single unsharded server vs. router over N
/// sharded workers, all in-process.
struct Rig {
  Node single;
  std::vector<std::unique_ptr<Node>> workers;
  std::unique_ptr<server::ShardRouter> router;
  std::unique_ptr<server::HttpServer> router_http;

  Rig(const EventLog& log, size_t num_shards) : single(log) {
    server::RouterOptions options;
    for (const EventLog& part : PartitionLog(log, num_shards)) {
      workers.push_back(std::make_unique<Node>(part));
      options.shards.push_back(
          server::ShardEndpoint{"127.0.0.1", workers.back()->http->port()});
    }
    // Generous budget, hedging off: the differential axis certifies merge
    // bytes, not tail-latency policy (router_fault_test covers that).
    options.default_deadline_ms = 60000;
    options.hedge_after_ms = 0;
    router = std::make_unique<server::ShardRouter>(options);
    router_http = std::make_unique<server::HttpServer>();
    router->RegisterRoutes(router_http.get());
    EXPECT_TRUE(router_http->Start(0).ok());
  }
  ~Rig() { router_http->Stop(); }
};

struct GetResult {
  int status = 0;
  std::string body;
};

GetResult Get(uint16_t port, const std::string& target) {
  server::HttpClient client(port);
  auto response = client.Get(target);
  EXPECT_TRUE(response.ok()) << target << ": " << response.status();
  if (!response.ok()) return {};
  return {response->status, response->body};
}

/// The assertion every axis funnels into: same status, same bytes.
void ExpectIdentical(const Rig& rig, const std::string& target,
                     const std::string& context) {
  server::HttpClient single(rig.single.http->port());
  server::HttpClient routed(rig.router_http->port());
  auto want = single.Get(target);
  auto got = routed.Get(target);
  ASSERT_TRUE(want.ok()) << context << ": " << want.status();
  ASSERT_TRUE(got.ok()) << context << ": " << got.status();
  ASSERT_EQ(got->status, want->status) << context << " router body: "
                                       << got->body;
  ASSERT_EQ(got->body, want->body) << context;
}

std::vector<std::vector<ActivityId>> RandomPatterns(size_t count,
                                                    size_t num_activities,
                                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<ActivityId>> patterns;
  patterns.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t len = static_cast<size_t>(rng.NextInRange(2, 4));
    std::vector<ActivityId> p(len);
    for (auto& a : p) {
      a = static_cast<ActivityId>(rng.NextBounded(num_activities));
    }
    patterns.push_back(std::move(p));
  }
  return patterns;
}

/// Same sampler as differential_test's extended axis: every pattern valid
/// by construction.
std::vector<ExtendedPattern> RandomExtendedPatterns(size_t count,
                                                    size_t num_activities,
                                                    uint64_t seed) {
  Rng rng(seed ^ 0xE47E4DEDull);
  std::vector<ExtendedPattern> patterns;
  patterns.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ExtendedPattern pattern;
    const size_t len = 1 + rng.NextBounded(4);
    for (size_t e = 0; e < len; ++e) {
      PatternElement element;
      const size_t alts = rng.NextBool(0.3) ? 1 + rng.NextBounded(3) : 1;
      for (size_t a = 0; a < alts; ++a) {
        element.alternatives.push_back(
            static_cast<ActivityId>(rng.NextBounded(num_activities)));
      }
      std::sort(element.alternatives.begin(), element.alternatives.end());
      element.alternatives.erase(
          std::unique(element.alternatives.begin(),
                      element.alternatives.end()),
          element.alternatives.end());
      element.negated = rng.NextBool(0.2);
      element.kleene = !element.negated && rng.NextBool(0.25);
      pattern.elements.push_back(std::move(element));
    }
    bool any_positive = false;
    for (const auto& e : pattern.elements) any_positive |= !e.negated;
    if (!any_positive) {
      pattern.elements[rng.NextBounded(pattern.elements.size())].negated =
          false;
    }
    if (rng.NextBool(0.3)) pattern.max_span = rng.NextInRange(1, 80);
    if (rng.NextBool(0.3)) pattern.max_gap = rng.NextInRange(1, 25);
    EXPECT_TRUE(pattern.Validate().ok());
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

std::string PatternText(const SequenceIndex& index,
                        const std::vector<ActivityId>& pattern) {
  std::string q;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i > 0) q += " -> ";
    q += index.dictionary().Name(pattern[i]);
  }
  return q;
}

std::string Describe(const std::string& target, size_t shards,
                     uint64_t seed) {
  return "shards=" + std::to_string(shards) + " target=" + target +
         " (replay: SEQDET_DIFF_SEED=" + std::to_string(seed) + ")";
}

class RouterDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RouterDifferentialTest, DetectByteIdentical) {
  const uint64_t seed = DiffSeed();
  const size_t shards = GetParam();
  EventLog log = DiffLog(seed);
  Rig rig(log, shards);
  Rng limit_rng(seed ^ 0x11717ull);

  auto patterns = RandomPatterns(PatternsPerConfig(),
                                 log.dictionary().size(), seed);
  query::QueryProcessor qp(rig.single.index.get());
  for (size_t i = 0; i < patterns.size(); ++i) {
    const auto& p = patterns[i];
    std::string q = server::HttpClient::UrlEncode(
        PatternText(*rig.single.index, p));
    // Mostly unlimited (full merge order is on trial); a sampled minority
    // with tight limits, where merged-truncation must still equal
    // single-process truncation (per-shard prefixes cover the global
    // prefix because the merge is a stable sort by disjoint trace ids).
    std::string target = "/detect?q=" + q + "&limit=1000000";
    if (limit_rng.NextBool(0.25)) {
      target = "/detect?q=" + q + "&limit=" +
               std::to_string(limit_rng.NextInRange(0, 5));
    }
    ExpectIdentical(rig, target, Describe(target, shards, seed));

    // Transitive anchor on a sampled subset: the single server itself
    // matches the in-process engine (the full-corpus version of this
    // assertion lives in differential_test).
    if (i % 64 == 0) {
      auto single = Get(rig.single.http->port(),
                        "/detect?q=" + q + "&limit=1000000");
      auto matches = qp.Detect(query::Pattern(p));
      ASSERT_TRUE(matches.ok()) << matches.status();
      ASSERT_EQ(single.body, server::DetectResponseJson(*matches, 1000000))
          << Describe(target, shards, seed);
    }
  }
}

TEST_P(RouterDifferentialTest, ExtendedDetectByteIdentical) {
  const uint64_t seed = DiffSeed();
  const size_t shards = GetParam();
  EventLog log = DiffLog(seed);
  Rig rig(log, shards);
  const auto& dict = rig.single.index->dictionary();

  auto patterns = RandomExtendedPatterns(
      std::max<size_t>(PatternsPerConfig() / 4, 100), dict.size(), seed);
  for (const ExtendedPattern& p : patterns) {
    std::string target = "/detect?q=" +
                         server::HttpClient::UrlEncode(p.ToString(dict)) +
                         "&limit=1000000";
    ExpectIdentical(rig, target, Describe(target, shards, seed));
  }
}

TEST_P(RouterDifferentialTest, StatsByteIdentical) {
  const uint64_t seed = DiffSeed();
  const size_t shards = GetParam();
  EventLog log = DiffLog(seed);
  Rig rig(log, shards);
  Rng rng(seed ^ 0x57A75ull);

  auto patterns = RandomPatterns(
      std::max<size_t>(PatternsPerConfig() / 4, 100),
      log.dictionary().size(), seed ^ 1);
  for (const auto& p : patterns) {
    std::string target =
        "/stats?q=" + server::HttpClient::UrlEncode(
                          PatternText(*rig.single.index, p));
    if (rng.NextBool()) target += "&last=1";
    ExpectIdentical(rig, target, Describe(target, shards, seed));
  }
}

TEST_P(RouterDifferentialTest, ContinueByteIdenticalAllModes) {
  const uint64_t seed = DiffSeed();
  const size_t shards = GetParam();
  EventLog log = DiffLog(seed);
  Rig rig(log, shards);
  Rng rng(seed ^ 0xC027ull);

  auto patterns = RandomPatterns(
      std::max<size_t>(PatternsPerConfig() / 4, 100),
      log.dictionary().size(), seed ^ 2);
  const char* kModes[] = {"accurate", "fast", "hybrid"};
  for (size_t i = 0; i < patterns.size(); ++i) {
    std::string q = server::HttpClient::UrlEncode(
        PatternText(*rig.single.index, patterns[i]));
    std::string target =
        "/continue?q=" + q + "&mode=" + kModes[i % 3];
    if (i % 3 == 2 && rng.NextBool()) {
      // Hybrid's topk drives the fast-rank-then-verify split; 0 falls
      // back to the pure fast ranking on both sides.
      target += "&topk=" + std::to_string(rng.NextInRange(0, 6));
    }
    if (rng.NextBool(0.3)) {
      target += "&limit=" + std::to_string(rng.NextInRange(0, 8));
    }
    ExpectIdentical(rig, target, Describe(target, shards, seed));
  }
}

TEST_P(RouterDifferentialTest, ErrorResponsesRelayedVerbatim) {
  const uint64_t seed = DiffSeed();
  const size_t shards = GetParam();
  EventLog log = DiffLog(seed);
  Rig rig(log, shards);

  // Shard rejections (unknown activity, bad syntax, bad mode) must relay
  // byte-identically: the router forwards the first shard's 400 instead
  // of synthesizing its own error shape.
  for (const char* target :
       {"/detect?q=no_such_activity_xyz", "/detect?q=%28%28%28",
        "/stats?q=act_0", "/continue?q=act_0+-%3E+act_1&mode=bogus",
        "/detect", "/stats", "/continue"}) {
    ExpectIdentical(rig, target, Describe(target, shards, seed));
  }
  // /health is a router-local answer with the single server's bytes.
  ExpectIdentical(rig, "/health", Describe("/health", shards, seed));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, RouterDifferentialTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace seqdet
