// Parameterized property sweep over storage configurations: the same
// randomized workload must match a std::map reference model regardless of
// shard count, flush threshold, WAL usage or persistence mode — and must
// survive a reopen in persistent modes.

#include <filesystem>
#include <map>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/sharded_table.h"
#include "storage/table.h"

namespace seqdet::storage {
namespace {

namespace fs = std::filesystem;

struct StorageParam {
  size_t shards;
  size_t flush_bytes;
  bool in_memory;
  bool use_wal;
};

std::string ParamName(const ::testing::TestParamInfo<StorageParam>& info) {
  const StorageParam& p = info.param;
  return "shards" + std::to_string(p.shards) + "_flush" +
         std::to_string(p.flush_bytes) +
         (p.in_memory ? "_mem" : "_disk") + (p.use_wal ? "_wal" : "_nowal");
}

class StorageSweepTest : public ::testing::TestWithParam<StorageParam> {
 protected:
  void SetUp() override {
    if (!GetParam().in_memory) {
      dir_ = fs::temp_directory_path() /
             ("seqdet_param_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++));
      fs::create_directories(dir_);
    }
  }
  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  TableOptions Options() const {
    TableOptions options;
    options.memtable_flush_bytes = GetParam().flush_bytes;
    options.in_memory = GetParam().in_memory;
    options.use_wal = GetParam().use_wal && !GetParam().in_memory;
    return options;
  }

  std::unique_ptr<ShardedTable> OpenTable() {
    auto table =
        ShardedTable::Open(dir_.string(), "sweep", GetParam().shards,
                           Options());
    EXPECT_TRUE(table.ok()) << table.status();
    return std::move(table).value();
  }

  fs::path dir_;
  static int counter_;
};

int StorageSweepTest::counter_ = 0;

TEST_P(StorageSweepTest, MatchesReferenceModelUnderRandomWorkload) {
  auto table = OpenTable();
  std::map<std::string, std::string> model;
  Rng rng(1234);
  for (int step = 0; step < 1500; ++step) {
    std::string key = "k" + std::to_string(rng.NextBounded(60));
    uint64_t op = rng.NextBounded(100);
    if (op < 30) {
      std::string v = "p" + std::to_string(rng.NextBounded(100));
      ASSERT_TRUE(table->Put(key, v).ok());
      model[key] = v;
    } else if (op < 70) {
      std::string v = "+" + std::to_string(rng.NextBounded(10));
      ASSERT_TRUE(table->Append(key, v).ok());
      model[key] += v;
    } else if (op < 85) {
      ASSERT_TRUE(table->Delete(key).ok());
      model.erase(key);
    } else if (op < 95) {
      ASSERT_TRUE(table->Flush().ok());
    } else {
      ASSERT_TRUE(table->Compact().ok());
    }
    std::string got;
    Status s = table->Get(key, &got);
    auto it = model.find(key);
    if (it == model.end()) {
      ASSERT_TRUE(s.IsNotFound()) << "step " << step;
    } else {
      ASSERT_TRUE(s.ok()) << "step " << step << ": " << s;
      ASSERT_EQ(got, it->second) << "step " << step;
    }
  }

  // Full-state comparison through the merged scan.
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE(table
                  ->Scan("", "",
                         [&](std::string_view k, std::string_view v) {
                           scanned.emplace(std::string(k), std::string(v));
                           return true;
                         })
                  .ok());
  EXPECT_EQ(scanned, model);

  // Persistent modes must reproduce the state after a reopen. Without a
  // WAL only flushed data survives, so flush first.
  if (!GetParam().in_memory) {
    ASSERT_TRUE(table->Flush().ok());
    table.reset();
    auto reopened = OpenTable();
    std::map<std::string, std::string> recovered;
    ASSERT_TRUE(reopened
                    ->Scan("", "",
                           [&](std::string_view k, std::string_view v) {
                             recovered.emplace(std::string(k),
                                               std::string(v));
                             return true;
                           })
                    .ok());
    EXPECT_EQ(recovered, model);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StorageSweepTest,
    ::testing::Values(StorageParam{1, 1u << 20, true, false},
                      StorageParam{4, 1u << 20, true, false},
                      StorageParam{1, 256, true, false},
                      StorageParam{8, 512, true, false},
                      StorageParam{1, 1u << 20, false, true},
                      StorageParam{4, 400, false, true},
                      StorageParam{2, 1u << 20, false, false},
                      StorageParam{3, 333, false, false}),
    ParamName);

}  // namespace
}  // namespace seqdet::storage
