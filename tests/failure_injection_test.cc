// Failure injection: corrupted/truncated on-disk state must surface as
// clean Status errors (or be recovered up to the damage), never as crashes
// or silent wrong answers.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "datagen/generators.h"
#include "gtest/gtest.h"
#include "index/index_tables.h"
#include "index/sequence_index.h"
#include "log/event_log.h"
#include "storage/database.h"
#include "storage/segment.h"
#include "storage/write_batch.h"

namespace seqdet {
namespace {

namespace fs = std::filesystem;
using storage::Database;
using storage::RecordKind;
using storage::Segment;
using storage::SegmentBuilder;

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("seqdet_failure_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

// Returns the first file under `dir` matching `suffix` (by extension).
fs::path FindFile(const fs::path& dir, const std::string& suffix) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().string().ends_with(suffix)) return entry.path();
  }
  return {};
}

void FlipByteAt(const fs::path& file, size_t offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(FailureInjectionTest, CorruptSegmentBodyDetectedOnReopen) {
  TempDir dir;
  {
    auto db = Database::Open(dir.str());
    ASSERT_TRUE(db.ok());
    auto table = (*db)->GetOrCreateTable("victim");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->Put("key", "value").ok());
    ASSERT_TRUE((*table)->Flush().ok());
  }
  fs::path segment = FindFile(dir.path(), ".seg");
  ASSERT_FALSE(segment.empty());
  FlipByteAt(segment, 10);  // inside the entry body

  // SDSEG2 checks block checksums on first access, so body damage may
  // surface at open (v1 path) or at the first read touching the block —
  // either way it must be Corruption, never wrong data.
  auto db = Database::Open(dir.str());
  if (!db.ok()) {
    EXPECT_TRUE(db.status().IsCorruption()) << db.status();
  } else {
    auto table = (*db)->GetOrCreateTable("victim");
    ASSERT_TRUE(table.ok());
    std::string value;
    Status s = (*table)->Get("key", &value);
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(s.IsCorruption()) << s;
  }
}

TEST(FailureInjectionTest, CorruptSegmentMagicDetected) {
  TempDir dir;
  {
    auto db = Database::Open(dir.str());
    auto table = (*db)->GetOrCreateTable("victim");
    ASSERT_TRUE((*table)->Put("key", "value").ok());
    ASSERT_TRUE((*table)->Flush().ok());
  }
  fs::path segment = FindFile(dir.path(), ".seg");
  FlipByteAt(segment, 0);  // magic
  auto db = Database::Open(dir.str());
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption());
}

TEST(FailureInjectionTest, TruncatedSegmentDetected) {
  TempDir dir;
  {
    auto db = Database::Open(dir.str());
    auto table = (*db)->GetOrCreateTable("victim");
    ASSERT_TRUE((*table)->Put("key", std::string(1000, 'v')).ok());
    ASSERT_TRUE((*table)->Flush().ok());
  }
  fs::path segment = FindFile(dir.path(), ".seg");
  fs::resize_file(segment, fs::file_size(segment) / 2);
  auto db = Database::Open(dir.str());
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption());
}

TEST(FailureInjectionTest, TornWalTailRecoversPrefix) {
  TempDir dir;
  {
    auto db = Database::Open(dir.str());
    auto table = (*db)->GetOrCreateTable("t");
    ASSERT_TRUE((*table)->Put("committed", "yes").ok());
    ASSERT_TRUE((*table)->Put("torn", "half").ok());
    // No flush: both records only exist in the WAL.
  }
  fs::path wal = FindFile(dir.path(), ".wal");
  ASSERT_FALSE(wal.empty());
  fs::resize_file(wal, fs::file_size(wal) - 4);

  auto db = Database::Open(dir.str());
  ASSERT_TRUE(db.ok()) << db.status();
  storage::Table* table = (*db)->GetTable("t");
  ASSERT_NE(table, nullptr);
  std::string value;
  EXPECT_TRUE(table->Get("committed", &value).ok());
  EXPECT_TRUE(table->Get("torn", &value).IsNotFound());
}

TEST(FailureInjectionTest, CorruptWalRecordStopsReplayCleanly) {
  TempDir dir;
  {
    auto db = Database::Open(dir.str());
    auto table = (*db)->GetOrCreateTable("t");
    ASSERT_TRUE((*table)->Put("a", "1").ok());
    ASSERT_TRUE((*table)->Put("b", "2").ok());
    ASSERT_TRUE((*table)->Put("c", "3").ok());
  }
  fs::path wal = FindFile(dir.path(), ".wal");
  // Flip a byte inside the second record's payload; replay keeps "a" and
  // drops everything from the damage onward.
  FlipByteAt(wal, fs::file_size(wal) / 2);
  auto db = Database::Open(dir.str());
  ASSERT_TRUE(db.ok()) << db.status();
  storage::Table* table = (*db)->GetTable("t");
  std::string value;
  EXPECT_TRUE(table->Get("a", &value).ok());
  EXPECT_TRUE(table->Get("c", &value).IsNotFound());
}

TEST(FailureInjectionTest, CorruptIndexMetaSurfacesError) {
  TempDir dir;
  {
    auto db = Database::Open(dir.str());
    index::IndexOptions options;
    options.num_threads = 1;
    auto index = index::SequenceIndex::Open(db->get(), options);
    ASSERT_TRUE(index.ok());
    eventlog::EventLog log;
    log.Append(1, "A", 1);
    log.Append(1, "B", 2);
    log.SortAllTraces();
    ASSERT_TRUE((*index)->Update(log).ok());
    ASSERT_TRUE((*index)->Flush().ok());
  }
  // Damage the meta table's segment.
  fs::path meta_segment;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    std::string name = entry.path().filename().string();
    if (name.starts_with("meta.") && name.ends_with(".seg")) {
      meta_segment = entry.path();
    }
  }
  ASSERT_FALSE(meta_segment.empty());
  FlipByteAt(meta_segment, 12);
  // With SDSEG2 the damage is inside a lazily-checked block, so it may
  // pass Database::Open and must then fail when SequenceIndex reads its
  // meta keys.
  auto db = Database::Open(dir.str());
  if (db.ok()) {
    index::IndexOptions options;
    options.num_threads = 1;
    auto index = index::SequenceIndex::Open(db->get(), options);
    EXPECT_FALSE(index.ok());
  }
}

TEST(FailureInjectionTest, StaleWalAfterFlushCrashIsNotReplayed) {
  // Crash window: the memtable flushed into a segment but the process died
  // before the WAL rotation removed the old log. Replaying that log would
  // double-apply the appends; recovery must recognize it as stale by its
  // generation id and discard it.
  TempDir dir;
  fs::path stale_wal;
  std::string saved_wal_bytes;
  {
    auto db = Database::Open(dir.str());
    auto table = (*db)->GetOrCreateTable("t");
    storage::WriteBatch batch;  // Apply flushes the WAL to the OS
    batch.Append("k", "once");
    ASSERT_TRUE((*table)->Apply(batch).ok());
    stale_wal = FindFile(dir.path(), ".wal");
    ASSERT_FALSE(stale_wal.empty());
    {
      std::ifstream in(stale_wal, std::ios::binary);
      saved_wal_bytes.assign(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(saved_wal_bytes.empty());
    ASSERT_TRUE((*table)->Flush().ok());
  }
  // Re-materialize the pre-flush WAL, simulating a crash before rotation
  // finished deleting it.
  {
    std::ofstream out(stale_wal, std::ios::binary);
    out.write(saved_wal_bytes.data(),
              static_cast<std::streamsize>(saved_wal_bytes.size()));
  }
  auto db = Database::Open(dir.str());
  ASSERT_TRUE(db.ok()) << db.status();
  std::string value;
  ASSERT_TRUE((*db)->GetTable("t")->Get("k", &value).ok());
  EXPECT_EQ(value, "once");  // not "onceonce"
}

TEST(FailureInjectionTest, PostCompactionWritesSurviveReopen) {
  // Compaction reuses the next segment id; writes after a compaction must
  // land in a WAL generation that recovery replays.
  TempDir dir;
  {
    auto db = Database::Open(dir.str());
    auto table = (*db)->GetOrCreateTable("t");
    ASSERT_TRUE((*table)->Append("k", "a").ok());
    ASSERT_TRUE((*table)->Flush().ok());
    ASSERT_TRUE((*table)->Append("k", "b").ok());
    ASSERT_TRUE((*table)->Compact().ok());
    ASSERT_TRUE((*table)->Append("k", "c").ok());  // WAL only
  }
  auto db = Database::Open(dir.str());
  ASSERT_TRUE(db.ok()) << db.status();
  std::string value;
  ASSERT_TRUE((*db)->GetTable("t")->Get("k", &value).ok());
  EXPECT_EQ(value, "abc");
}

TEST(FailureInjectionTest, SegmentBuilderOutputSurvivesRoundTripFuzz) {
  // Property: flipping any single byte of a sealed segment either still
  // decodes to the same entries (impossible given the checksum) or fails
  // with Corruption — never crashes, never returns different data.
  SegmentBuilder builder;
  ASSERT_TRUE(builder.Add("alpha", RecordKind::kPut, "1").ok());
  ASSERT_TRUE(builder.Add("beta", RecordKind::kAppend, "22").ok());
  ASSERT_TRUE(builder.Add("gamma", RecordKind::kDelete, "").ok());
  std::string sealed = builder.Finish();
  for (size_t i = 0; i < sealed.size(); ++i) {
    std::string mutated = sealed;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    auto segment = Segment::FromBuffer(mutated);
    if (!segment.ok()) continue;
    // SDSEG2 defers block checksum verification to first access; a flip
    // that survives open must still be caught when the block is read.
    bool caught = false;
    for (size_t j = 0; j < (*segment)->size() && !caught; ++j) {
      caught = !(*segment)->Entry(j).ok();
    }
    EXPECT_TRUE(caught) << "byte " << i;
  }
}

TEST(FailureInjectionTest, MissingSegmentFileFailsToOpen) {
  EXPECT_FALSE(Segment::Load("/nonexistent/file.seg").ok());
}

TEST(FailureInjectionTest, EmptyDirectoryOpensCleanly) {
  TempDir dir;
  auto db = Database::Open(dir.str());
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->TableNames().empty());
}

TEST(FailureInjectionTest, UnwritableDirectoryReported) {
  auto db = Database::Open("/proc/definitely/not/writable");
  EXPECT_FALSE(db.ok());
}

// ---------------------------------------------------------------------------
// Fold crash safety: a fold/upgrade interrupted at any per-key commit
// boundary (clean abort via the pace callback, or a hard SIGKILL) must
// leave an index that reopens, passes CheckConsistency, and answers
// queries identically to a pristine index built from the same log.
// ---------------------------------------------------------------------------

eventlog::EventLog FoldCrashLog() {
  datagen::RandomLogConfig config;
  config.num_traces = 20;
  config.max_events_per_trace = 20;
  config.num_activities = 6;
  config.seed = 99;
  config.mean_gap = 3;
  return datagen::GenerateRandomLog(config);
}

/// Per-pair postings of `index` for every activity pair, sorted — the
/// comparison key for "two indexes answer identically".
std::vector<std::vector<index::PairOccurrence>> AllPairPostings(
    index::SequenceIndex* index) {
  std::vector<std::vector<index::PairOccurrence>> all;
  size_t n = index->dictionary().size();
  for (eventlog::ActivityId a = 0; a < n; ++a) {
    for (eventlog::ActivityId b = 0; b < n; ++b) {
      auto postings = index->GetPairPostings({a, b});
      EXPECT_TRUE(postings.ok()) << postings.status();
      std::sort(postings->begin(), postings->end());
      all.push_back(std::move(*postings));
    }
  }
  return all;
}

/// Pristine reference: the same log indexed into a fresh in-memory index.
std::vector<std::vector<index::PairOccurrence>> ReferencePostings(
    const eventlog::EventLog& log, uint32_t posting_format) {
  storage::DbOptions db_options;
  db_options.table.in_memory = true;
  db_options.table.use_wal = false;
  auto db = std::move(Database::Open("", db_options)).value();
  index::IndexOptions options;
  options.num_threads = 1;
  options.posting_format = posting_format;
  auto index = std::move(index::SequenceIndex::Open(db.get(), options))
                   .value();
  EXPECT_TRUE(index->Update(log).ok());
  return AllPairPostings(index.get());
}

TEST(FoldCrashTest, AbortedIncrementalFoldReopensConsistent) {
  TempDir dir;
  eventlog::EventLog log = FoldCrashLog();
  auto reference = ReferencePostings(log, index::kPostingFormatBlocked);
  {
    auto db = Database::Open(dir.str());
    ASSERT_TRUE(db.ok());
    index::IndexOptions options;
    options.num_threads = 1;
    auto index = index::SequenceIndex::Open(db->get(), options);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->Update(log).ok());
    ASSERT_TRUE((*index)->Flush().ok());
    // Abort partway: some keys committed folded (each commit WAL-durable),
    // the rest keep their fragment piles — the on-disk state after a crash
    // at that commit boundary.
    index::FoldStats stats;
    Status aborted = (*index)->FoldPostingsIncremental(
        &stats, [](const index::FoldStats& fs) {
          return fs.keys_folded >= 5 ? Status::Aborted("injected crash")
                                     : Status::OK();
        });
    ASSERT_TRUE(aborted.IsAborted()) << aborted;
    ASSERT_GE(stats.keys_folded, 5u);
    // No Flush: durability must come from the per-key WAL writes alone.
  }
  auto db = Database::Open(dir.str());
  ASSERT_TRUE(db.ok()) << db.status();
  index::IndexOptions options;
  options.num_threads = 1;
  auto index = index::SequenceIndex::Open(db->get(), options);
  ASSERT_TRUE(index.ok());
  auto report = (*index)->CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->violations.front();
  EXPECT_EQ(AllPairPostings(index->get()), reference);
  // Finishing the fold later yields the same answers again.
  ASSERT_TRUE((*index)->FoldPostingsIncremental().ok());
  EXPECT_EQ(AllPairPostings(index->get()), reference);
}

TEST(FoldCrashTest, AbortedUpgradeRollsForwardOnReopen) {
  TempDir dir;
  eventlog::EventLog log = FoldCrashLog();
  auto reference = ReferencePostings(log, index::kPostingFormatFlat);
  {
    auto db = Database::Open(dir.str());
    ASSERT_TRUE(db.ok());
    index::IndexOptions options;
    options.num_threads = 1;
    options.posting_format = index::kPostingFormatFlat;
    auto index = index::SequenceIndex::Open(db->get(), options);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->Update(log).ok());
    ASSERT_TRUE((*index)->Flush().ok());
    // Abort the v1 -> v2 upgrade mid-pass: the durable posting_upgrade
    // marker is down, some values are v2, the persisted format still v1.
    index::FoldStats stats;
    Status aborted = (*index)->FoldPostings(
        &stats, [](const index::FoldStats& fs) {
          return fs.keys_folded >= 5 ? Status::Aborted("injected crash")
                                     : Status::OK();
        });
    ASSERT_TRUE(aborted.IsAborted()) << aborted;
    EXPECT_EQ((*index)->posting_format(), index::kPostingFormatFlat);
  }
  // Reopen: OpenTables sees the marker and rolls the upgrade forward.
  auto db = Database::Open(dir.str());
  ASSERT_TRUE(db.ok()) << db.status();
  index::IndexOptions options;
  options.num_threads = 1;
  auto index = index::SequenceIndex::Open(db->get(), options);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ((*index)->posting_format(), index::kPostingFormatBlocked);
  auto report = (*index)->CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->violations.front();
  EXPECT_EQ(AllPairPostings(index->get()), reference);
  // The marker must be cleared — a second reopen runs no upgrade pass.
  std::string marker;
  EXPECT_TRUE((*db)->GetTable("meta")
                  ->Get("posting_upgrade", &marker)
                  .IsNotFound());
}

TEST(FoldCrashTest, SigkillMidFoldReopensConsistent) {
  TempDir dir;
  eventlog::EventLog log = FoldCrashLog();
  auto reference = ReferencePostings(log, index::kPostingFormatBlocked);
  // Build the fragmented on-disk index in the parent (deterministic), then
  // let a child process die by SIGKILL in the middle of a fold pass — no
  // destructors, no flush, exactly a power-cut at a commit boundary.
  {
    auto db = Database::Open(dir.str());
    ASSERT_TRUE(db.ok());
    index::IndexOptions options;
    options.num_threads = 1;
    auto index = index::SequenceIndex::Open(db->get(), options);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->Update(log).ok());
    ASSERT_TRUE((*index)->Flush().ok());
  }
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: fold until the 5th key commit, then vanish.
    auto db = Database::Open(dir.str());
    if (!db.ok()) _exit(3);
    index::IndexOptions options;
    options.num_threads = 1;
    auto index = index::SequenceIndex::Open(db->get(), options);
    if (!index.ok()) _exit(4);
    (void)(*index)->FoldPostingsIncremental(
        nullptr, [](const index::FoldStats& fs) {
          if (fs.keys_folded >= 5) kill(getpid(), SIGKILL);
          return Status::OK();
        });
    _exit(5);  // not reached if the kill landed
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited " << wstatus;
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  auto db = Database::Open(dir.str());
  ASSERT_TRUE(db.ok()) << db.status();
  index::IndexOptions options;
  options.num_threads = 1;
  auto index = index::SequenceIndex::Open(db->get(), options);
  ASSERT_TRUE(index.ok()) << index.status();
  auto report = (*index)->CheckConsistency();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->violations.front();
  EXPECT_EQ(AllPairPostings(index->get()), reference);
}

}  // namespace
}  // namespace seqdet
