#include <algorithm>
#include <set>
#include <string>

#include "baselines/esearch/es_engine.h"
#include "baselines/sase/sase_engine.h"
#include "baselines/subtree/subtree_index.h"
#include "common/rng.h"
#include "datagen/generators.h"
#include "gtest/gtest.h"
#include "log/event_log.h"

namespace seqdet::baseline {
namespace {

using eventlog::ActivityId;
using eventlog::EventLog;
using eventlog::Timestamp;

EventLog Letters(const std::vector<std::pair<int, std::string>>& traces) {
  EventLog log;
  for (const auto& [id, s] : traces) {
    int ts = 1;
    for (char c : s) log.Append(id, std::string(1, c), ts++);
  }
  log.SortAllTraces();
  return log;
}

std::vector<ActivityId> Ids(const EventLog& log, const std::string& s) {
  std::vector<ActivityId> ids;
  for (char c : s) ids.push_back(log.dictionary().Lookup(std::string(1, c)));
  return ids;
}

// ---------------------------------------------------------------------------
// SubtreeIndex ([19])
// ---------------------------------------------------------------------------

TEST(SubtreeIndexTest, FindsAllContiguousOccurrences) {
  EventLog log = Letters({{1, "ABAB"}, {2, "BABA"}});
  auto index = SubtreeIndex::Build(log);
  ASSERT_TRUE(index.ok()) << index.status();
  auto hits = (*index)->Find(Ids(log, "AB"));
  // trace1: positions 0, 2; trace2: position 1.
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], (ScOccurrence{1, 0}));
  EXPECT_EQ(hits[1], (ScOccurrence{1, 2}));
  EXPECT_EQ(hits[2], (ScOccurrence{2, 1}));
  EXPECT_EQ((*index)->Count(Ids(log, "AB")), 3u);
}

TEST(SubtreeIndexTest, NoFalsePositives) {
  EventLog log = Letters({{1, "AXB"}});
  auto index = SubtreeIndex::Build(log);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Find(Ids(log, "AB")).empty());  // not contiguous
  EXPECT_EQ((*index)->Find(Ids(log, "AXB")).size(), 1u);
}

TEST(SubtreeIndexTest, FullTracePattern) {
  EventLog log = Letters({{1, "ABC"}});
  auto index = SubtreeIndex::Build(log);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->Find(Ids(log, "ABC")).size(), 1u);
  EXPECT_TRUE((*index)->Find(Ids(log, "ABCD")).empty());
  EXPECT_TRUE((*index)->Find({}).empty());
}

TEST(SubtreeIndexTest, TrieSizesAreQuadraticInTraceLength) {
  EventLog log = Letters({{1, "ABCDEFGH"}});  // 8 distinct events
  auto index = SubtreeIndex::Build(log);
  ASSERT_TRUE(index.ok());
  // All suffixes are distinct: nodes = 8+7+...+1 = 36 (plus root).
  EXPECT_EQ((*index)->num_trie_nodes(), 37u);
  EXPECT_EQ((*index)->preorder_length(), 72u);  // 2 * non-root nodes
  EXPECT_EQ((*index)->num_suffixes(), 8u);
}

TEST(SubtreeIndexTest, NodeBudgetAborts) {
  datagen::RandomLogConfig config;
  config.num_traces = 20;
  config.max_events_per_trace = 50;
  config.num_activities = 20;
  EventLog log = datagen::GenerateRandomLog(config);
  SubtreeIndexOptions options;
  options.max_trie_nodes = 100;
  auto index = SubtreeIndex::Build(log, options);
  ASSERT_FALSE(index.ok());
  EXPECT_TRUE(index.status().IsOutOfRange());
}

TEST(SubtreeIndexTest, MatchesBruteForceOnRandomLogs) {
  Rng rng(41);
  datagen::RandomLogConfig config;
  config.num_traces = 15;
  config.max_events_per_trace = 30;
  config.num_activities = 4;
  config.seed = 99;
  EventLog log = datagen::GenerateRandomLog(config);
  auto index = SubtreeIndex::Build(log);
  ASSERT_TRUE(index.ok());
  for (int round = 0; round < 40; ++round) {
    size_t m = 1 + rng.NextBounded(4);
    std::vector<ActivityId> pattern;
    for (size_t i = 0; i < m; ++i) {
      pattern.push_back(static_cast<ActivityId>(rng.NextBounded(4)));
    }
    std::vector<ScOccurrence> expected;
    for (const auto& t : log.traces()) {
      for (size_t s = 0; s + m <= t.size(); ++s) {
        bool ok = true;
        for (size_t j = 0; j < m; ++j) {
          if (t.events[s + j].activity != pattern[j]) {
            ok = false;
            break;
          }
        }
        if (ok) expected.push_back({t.id, static_cast<uint32_t>(s)});
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ((*index)->Find(pattern), expected) << "round " << round;
  }
}

TEST(SubtreeIndexTest, ContinuationsCountFollowers) {
  EventLog log = Letters({{1, "ABC"}, {2, "ABD"}, {3, "ABC"}});
  auto index = SubtreeIndex::Build(log);
  ASSERT_TRUE(index.ok());
  auto next = (*index)->Continuations(Ids(log, "AB"));
  ASSERT_EQ(next.size(), 2u);
  EXPECT_EQ(next[0].first, log.dictionary().Lookup("C"));
  EXPECT_EQ(next[0].second, 2u);
  EXPECT_EQ(next[1].second, 1u);
  // Empty pattern: continuations from the root = every event occurrence.
  auto root = (*index)->Continuations({});
  EXPECT_FALSE(root.empty());
}

// ---------------------------------------------------------------------------
// SaseEngine
// ---------------------------------------------------------------------------

TEST(SaseEngineTest, ScFindsOverlappingOccurrences) {
  EventLog log = Letters({{1, "AAA"}});
  SaseEngine engine(&log);
  auto matches = engine.Detect(Ids(log, "AA"), index::Policy::kStrictContiguity);
  EXPECT_EQ(matches.size(), 2u);  // positions 0 and 1
}

TEST(SaseEngineTest, ScRespectsContiguity) {
  EventLog log = Letters({{1, "AXB"}, {2, "AB"}});
  SaseEngine engine(&log);
  auto matches = engine.Detect(Ids(log, "AB"), index::Policy::kStrictContiguity);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].trace, 2u);
}

TEST(SaseEngineTest, StnmGreedyNonOverlapping) {
  // §2.1 introduction: <AAABAACB>, pattern AAB -> matches at
  // timestamps (1,2,4) and (5,6,8).
  EventLog log = Letters({{1, "AAABAACB"}});
  SaseEngine engine(&log);
  auto matches =
      engine.Detect(Ids(log, "AAB"), index::Policy::kSkipTillNextMatch);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].timestamps, (std::vector<Timestamp>{1, 2, 4}));
  EXPECT_EQ(matches[1].timestamps, (std::vector<Timestamp>{5, 6, 8}));
}

TEST(SaseEngineTest, StnmSkipsIrrelevant) {
  EventLog log = Letters({{1, "XAXXBX"}});
  SaseEngine engine(&log);
  auto matches =
      engine.Detect(Ids(log, "AB"), index::Policy::kSkipTillNextMatch);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].timestamps, (std::vector<Timestamp>{2, 5}));
}

TEST(SaseEngineTest, EmptyPatternAndShortTraces) {
  EventLog log = Letters({{1, "A"}});
  SaseEngine engine(&log);
  EXPECT_TRUE(engine.Detect({}, index::Policy::kSkipTillNextMatch).empty());
  EXPECT_TRUE(engine.Detect(Ids(log, "AB"), index::Policy::kSkipTillNextMatch)
                  .empty());
  EXPECT_EQ(engine.Count(Ids(log, "A"), index::Policy::kStrictContiguity),
            1u);
}

// ---------------------------------------------------------------------------
// EsLikeEngine
// ---------------------------------------------------------------------------

TEST(EsEngineTest, JsonRoundTrip) {
  EventLog log = Letters({{42, "AB"}});
  std::string json = TraceToJson(log.traces()[0], log.dictionary());
  eventlog::TraceId id;
  std::vector<std::string> activities;
  std::vector<Timestamp> timestamps;
  ASSERT_TRUE(ParseTraceJson(json, &id, &activities, &timestamps));
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(activities, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(timestamps, (std::vector<Timestamp>{1, 2}));
}

TEST(EsEngineTest, JsonRejectsGarbage) {
  eventlog::TraceId id;
  std::vector<std::string> activities;
  std::vector<Timestamp> timestamps;
  EXPECT_FALSE(ParseTraceJson("{}", &id, &activities, &timestamps));
  EXPECT_FALSE(ParseTraceJson("{\"trace\":1,\"events\":[{\"a\":\"x\"", &id,
                              &activities, &timestamps));
}

TEST(EsEngineTest, EmptyTraceDocument) {
  EventLog log;
  log.AddTrace(eventlog::Trace{5, {}});
  auto engine = EsLikeEngine::Build(log);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine)->num_documents(), 1u);
}

TEST(EsEngineTest, StnmMatchesSase) {
  datagen::RandomLogConfig config;
  config.num_traces = 25;
  config.max_events_per_trace = 40;
  config.num_activities = 5;
  config.seed = 17;
  EventLog log = datagen::GenerateRandomLog(config);
  auto engine = EsLikeEngine::Build(log);
  ASSERT_TRUE(engine.ok());
  SaseEngine sase(&log);
  Rng rng(18);
  for (int round = 0; round < 30; ++round) {
    size_t m = 2 + rng.NextBounded(4);
    std::vector<std::string> terms;
    std::vector<ActivityId> ids;
    for (size_t i = 0; i < m; ++i) {
      ActivityId a = static_cast<ActivityId>(rng.NextBounded(5));
      ids.push_back(a);
      terms.push_back(log.dictionary().Name(a));
    }
    auto es = (*engine)->DetectStnm(terms);
    auto reference = sase.Detect(ids, index::Policy::kSkipTillNextMatch);
    ASSERT_EQ(es.size(), reference.size()) << "round " << round;
    // Compare full match sets (order may differ).
    auto key = [](const auto& m) {
      return std::make_pair(m.trace, m.timestamps);
    };
    std::set<std::pair<eventlog::TraceId, std::vector<Timestamp>>> a_set,
        b_set;
    for (const auto& m : es) a_set.insert(key(m));
    for (const auto& m : reference) b_set.insert(key(m));
    EXPECT_EQ(a_set, b_set) << "round " << round;
  }
}

TEST(EsEngineTest, ScMatchesSase) {
  datagen::RandomLogConfig config;
  config.num_traces = 25;
  config.max_events_per_trace = 40;
  config.num_activities = 4;
  config.seed = 19;
  EventLog log = datagen::GenerateRandomLog(config);
  auto engine = EsLikeEngine::Build(log);
  ASSERT_TRUE(engine.ok());
  SaseEngine sase(&log);
  Rng rng(20);
  for (int round = 0; round < 30; ++round) {
    size_t m = 2 + rng.NextBounded(3);
    std::vector<std::string> terms;
    std::vector<ActivityId> ids;
    for (size_t i = 0; i < m; ++i) {
      ActivityId a = static_cast<ActivityId>(rng.NextBounded(4));
      ids.push_back(a);
      terms.push_back(log.dictionary().Name(a));
    }
    auto es = (*engine)->DetectSc(terms);
    auto reference = sase.Detect(ids, index::Policy::kStrictContiguity);
    EXPECT_EQ(es.size(), reference.size()) << "round " << round;
  }
}

TEST(EsEngineTest, UnknownTermYieldsNoMatches) {
  EventLog log = Letters({{1, "AB"}});
  auto engine = EsLikeEngine::Build(log);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE((*engine)->DetectStnm({"A", "GHOST"}).empty());
  EXPECT_TRUE((*engine)->DetectStnm({}).empty());
}

TEST(EsEngineTest, MultiplicityPruning) {
  // Pattern AA requires two A positions; trace with one A is pruned before
  // verification.
  EventLog log = Letters({{1, "AXB"}, {2, "AXA"}});
  auto engine = EsLikeEngine::Build(log);
  ASSERT_TRUE(engine.ok());
  auto matches = (*engine)->DetectStnm({"A", "A"});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].trace, 2u);
}

TEST(EsEngineTest, PatternLongerThanAnyDocument) {
  EventLog log = Letters({{1, "AB"}, {2, "BA"}});
  auto engine = EsLikeEngine::Build(log);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE((*engine)->DetectStnm({"A", "B", "A", "B", "A"}).empty());
  EXPECT_TRUE((*engine)->DetectSc({"A", "B", "A"}).empty());
}

TEST(EsEngineTest, ScPhraseWithRepeatedTerms) {
  EventLog log = Letters({{1, "AABAA"}});
  auto engine = EsLikeEngine::Build(log);
  ASSERT_TRUE(engine.ok());
  // "AA" occurs contiguously at positions 0 and 3.
  EXPECT_EQ((*engine)->DetectSc({"A", "A"}).size(), 2u);
  // "ABA" once.
  EXPECT_EQ((*engine)->DetectSc({"A", "B", "A"}).size(), 1u);
}

TEST(SubtreeIndexTest, EmptyLog) {
  EventLog log;
  auto index = SubtreeIndex::Build(log);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Find({0}).empty());
  EXPECT_EQ((*index)->num_suffixes(), 0u);
}

TEST(SubtreeIndexTest, ContinuationsOfAbsentPattern) {
  EventLog log = Letters({{1, "ABC"}});
  auto index = SubtreeIndex::Build(log);
  ASSERT_TRUE(index.ok());
  auto ids = Ids(log, "C");
  ids.push_back(999);  // path that does not exist
  EXPECT_TRUE((*index)->Continuations(ids).empty());
}

TEST(SaseEngineTest, CountAgreesWithDetectSize) {
  datagen::RandomLogConfig config;
  config.num_traces = 10;
  config.max_events_per_trace = 20;
  config.num_activities = 3;
  EventLog log = datagen::GenerateRandomLog(config);
  SaseEngine engine(&log);
  std::vector<ActivityId> pattern = {0, 1};  // act_0 -> act_1
  size_t count = engine.Count(pattern, index::Policy::kSkipTillNextMatch);
  EXPECT_EQ(count,
            engine.Detect(pattern, index::Policy::kSkipTillNextMatch).size());
  EXPECT_GT(count, 0u);
}

TEST(EsEngineTest, IngestionSimulationToggle) {
  EventLog log = Letters({{1, "ABC"}});
  EsOptions with, without;
  without.simulate_ingestion = false;
  auto a = EsLikeEngine::Build(log, with);
  auto b = EsLikeEngine::Build(log, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->DetectStnm({"A", "C"}).size(),
            (*b)->DetectStnm({"A", "C"}).size());
  EXPECT_EQ((*a)->num_terms(), (*b)->num_terms());
}

}  // namespace
}  // namespace seqdet::baseline
