#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "storage/bloom_filter.h"
#include "storage/database.h"
#include "storage/memtable.h"
#include "storage/segment.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace seqdet::storage {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("seqdet_storage_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

// ---------------------------------------------------------------------------
// MemTable
// ---------------------------------------------------------------------------

TEST(MemTableTest, PutOverwrites) {
  MemTable mem;
  mem.Apply(RecordKind::kPut, "k", "v1");
  mem.Apply(RecordKind::kPut, "k", "v2");
  const auto* e = mem.Find("k");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, RecordKind::kPut);
  EXPECT_EQ(e->value, "v2");
}

TEST(MemTableTest, AppendsConcatenate) {
  MemTable mem;
  mem.Apply(RecordKind::kAppend, "k", "ab");
  mem.Apply(RecordKind::kAppend, "k", "cd");
  const auto* e = mem.Find("k");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, RecordKind::kAppend);
  EXPECT_EQ(e->value, "abcd");
}

TEST(MemTableTest, PutThenAppendStaysPut) {
  MemTable mem;
  mem.Apply(RecordKind::kPut, "k", "base");
  mem.Apply(RecordKind::kAppend, "k", "+more");
  const auto* e = mem.Find("k");
  EXPECT_EQ(e->kind, RecordKind::kPut);
  EXPECT_EQ(e->value, "base+more");
}

TEST(MemTableTest, DeleteThenAppendBecomesPut) {
  MemTable mem;
  mem.Apply(RecordKind::kDelete, "k", "");
  mem.Apply(RecordKind::kAppend, "k", "fresh");
  const auto* e = mem.Find("k");
  EXPECT_EQ(e->kind, RecordKind::kPut);
  EXPECT_EQ(e->value, "fresh");
}

TEST(MemTableTest, DeleteShadowsPut) {
  MemTable mem;
  mem.Apply(RecordKind::kPut, "k", "v");
  mem.Apply(RecordKind::kDelete, "k", "");
  EXPECT_EQ(mem.Find("k")->kind, RecordKind::kDelete);
}

TEST(MemTableTest, BytesGrowAndClear) {
  MemTable mem;
  EXPECT_EQ(mem.ApproximateBytes(), 0u);
  mem.Apply(RecordKind::kPut, "key", std::string(100, 'x'));
  EXPECT_GT(mem.ApproximateBytes(), 100u);
  mem.Clear();
  EXPECT_EQ(mem.ApproximateBytes(), 0u);
  EXPECT_TRUE(mem.empty());
}

// ---------------------------------------------------------------------------
// Segment
// ---------------------------------------------------------------------------

TEST(SegmentTest, BuildAndFind) {
  SegmentBuilder builder;
  ASSERT_TRUE(builder.Add("apple", RecordKind::kPut, "1").ok());
  ASSERT_TRUE(builder.Add("banana", RecordKind::kAppend, "2").ok());
  ASSERT_TRUE(builder.Add("cherry", RecordKind::kDelete, "").ok());
  auto segment = Segment::FromBuffer(builder.Finish());
  ASSERT_TRUE(segment.ok()) << segment.status();
  EXPECT_EQ((*segment)->size(), 3u);
  auto e = (*segment)->Find("banana");
  ASSERT_TRUE(e.ok()) << e.status();
  ASSERT_NE(*e, nullptr);
  EXPECT_EQ((*e)->kind, RecordKind::kAppend);
  EXPECT_EQ((*e)->value, "2");
  auto absent = (*segment)->Find("durian");
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(*absent, nullptr);
}

TEST(SegmentTest, RejectsOutOfOrderKeys) {
  SegmentBuilder builder;
  ASSERT_TRUE(builder.Add("b", RecordKind::kPut, "1").ok());
  EXPECT_FALSE(builder.Add("a", RecordKind::kPut, "2").ok());
  EXPECT_FALSE(builder.Add("b", RecordKind::kPut, "dup").ok());
}

TEST(SegmentTest, ChecksumDetectsCorruption) {
  SegmentBuilder builder;
  ASSERT_TRUE(builder.Add("key", RecordKind::kPut, "value").ok());
  std::string buffer = builder.Finish();
  buffer[8] ^= 0x40;
  // SDSEG2 verifies block checksums lazily: the flip may surface at open
  // (index/trailer damage) or at first read of the touched block.
  auto segment = Segment::FromBuffer(buffer);
  if (!segment.ok()) {
    EXPECT_TRUE(segment.status().IsCorruption());
  } else {
    auto e = (*segment)->Find("key");
    ASSERT_FALSE(e.ok());
    EXPECT_TRUE(e.status().IsCorruption());
  }
}

TEST(SegmentTest, RejectsTruncation) {
  SegmentBuilder builder;
  ASSERT_TRUE(builder.Add("key", RecordKind::kPut, "value").ok());
  std::string buffer = builder.Finish();
  EXPECT_FALSE(Segment::FromBuffer(buffer.substr(0, 5)).ok());
}

TEST(SegmentTest, EmptySegmentIsValid) {
  SegmentBuilder builder;
  auto segment = Segment::FromBuffer(builder.Finish());
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ((*segment)->size(), 0u);
}

TEST(SegmentTest, LowerBound) {
  SegmentBuilder builder;
  for (std::string k : {"b", "d", "f"}) {
    ASSERT_TRUE(builder.Add(k, RecordKind::kPut, "v").ok());
  }
  auto segment = Segment::FromBuffer(builder.Finish());
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ(*(*segment)->LowerBound("a"), 0u);
  EXPECT_EQ(*(*segment)->LowerBound("b"), 0u);
  EXPECT_EQ(*(*segment)->LowerBound("c"), 1u);
  EXPECT_EQ(*(*segment)->LowerBound("g"), 3u);
}

TEST(SegmentTest, LoadFromDisk) {
  TempDir dir;
  SegmentBuilder builder;
  ASSERT_TRUE(builder.Add("k", RecordKind::kPut, "persisted").ok());
  std::string path = dir.str() + "/t.000001.seg";
  ASSERT_TRUE(WriteFileAtomic(path, builder.Finish()).ok());
  auto segment = Segment::Load(path);
  ASSERT_TRUE(segment.ok()) << segment.status();
  auto e = (*segment)->Find("k");
  ASSERT_TRUE(e.ok()) << e.status();
  ASSERT_NE(*e, nullptr);
  EXPECT_EQ((*e)->value, "persisted");
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

TEST(WalTest, RoundTrip) {
  TempDir dir;
  std::string path = dir.str() + "/test.wal";
  {
    WalWriter wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Add(RecordKind::kPut, "a", "1").ok());
    ASSERT_TRUE(wal.Add(RecordKind::kAppend, "b", "2").ok());
    ASSERT_TRUE(wal.Add(RecordKind::kDelete, "c", "").ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  std::vector<std::tuple<RecordKind, std::string, std::string>> records;
  size_t replayed = 0;
  ASSERT_TRUE(ReplayWal(path,
                        [&](RecordKind k, std::string_view key,
                            std::string_view value) {
                          records.emplace_back(k, std::string(key),
                                               std::string(value));
                        },
                        &replayed)
                  .ok());
  EXPECT_EQ(replayed, 3u);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(std::get<1>(records[0]), "a");
  EXPECT_EQ(std::get<0>(records[2]), RecordKind::kDelete);
}

TEST(WalTest, MissingFileIsEmpty) {
  size_t replayed = 99;
  ASSERT_TRUE(ReplayWal("/nonexistent/path.wal",
                        [](RecordKind, std::string_view, std::string_view) {},
                        &replayed)
                  .ok());
  EXPECT_EQ(replayed, 0u);
}

TEST(WalTest, TornTailTolerated) {
  TempDir dir;
  std::string path = dir.str() + "/torn.wal";
  {
    WalWriter wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Add(RecordKind::kPut, "intact", "yes").ok());
    ASSERT_TRUE(wal.Add(RecordKind::kPut, "torn", "half").ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  // Chop the final record's bytes to simulate a crash mid-append.
  auto size = fs::file_size(path);
  fs::resize_file(path, size - 3);
  size_t replayed = 0;
  ASSERT_TRUE(ReplayWal(path,
                        [](RecordKind, std::string_view, std::string_view) {},
                        &replayed)
                  .ok());
  EXPECT_EQ(replayed, 1u);
}

TEST(WalTest, ResetTruncates) {
  TempDir dir;
  std::string path = dir.str() + "/reset.wal";
  WalWriter wal;
  ASSERT_TRUE(wal.Open(path, false).ok());
  ASSERT_TRUE(wal.Add(RecordKind::kPut, "k", "v").ok());
  ASSERT_TRUE(wal.Reset().ok());
  wal.Close();
  size_t replayed = 0;
  ASSERT_TRUE(ReplayWal(path,
                        [](RecordKind, std::string_view, std::string_view) {},
                        &replayed)
                  .ok());
  EXPECT_EQ(replayed, 0u);
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TableOptions InMemoryOptions() {
  TableOptions options;
  options.in_memory = true;
  options.use_wal = false;
  return options;
}

TEST(TableTest, PutGetDelete) {
  auto table = Table::Open("", "t", InMemoryOptions());
  ASSERT_TRUE(table.ok());
  Table& t = **table;
  ASSERT_TRUE(t.Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_TRUE(t.Contains("k"));
  ASSERT_TRUE(t.Delete("k").ok());
  EXPECT_TRUE(t.Get("k", &value).IsNotFound());
}

TEST(TableTest, GetMissingIsNotFound) {
  auto table = Table::Open("", "t", InMemoryOptions());
  std::string value;
  EXPECT_TRUE((*table)->Get("ghost", &value).IsNotFound());
}

TEST(TableTest, RejectsBadName) {
  EXPECT_FALSE(Table::Open("", "bad/name", InMemoryOptions()).ok());
  EXPECT_FALSE(Table::Open("", "", InMemoryOptions()).ok());
  EXPECT_FALSE(Table::Open("", "dots.too", InMemoryOptions()).ok());
}

TEST(TableTest, AppendsFoldAcrossFlushes) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  ASSERT_TRUE(t.Append("k", "a").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Append("k", "b").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Append("k", "c").ok());  // stays in memtable
  std::string value;
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value, "abc");
  EXPECT_EQ(t.NumSegments(), 2u);
}

TEST(TableTest, PutShadowsOlderSegments) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  ASSERT_TRUE(t.Append("k", "old").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Put("k", "new").ok());
  std::string value;
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value, "new");
}

TEST(TableTest, DeleteShadowsOlderSegmentsAndAppendsRestart) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  ASSERT_TRUE(t.Append("k", "old").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Delete("k").ok());
  ASSERT_TRUE(t.Flush().ok());
  std::string value;
  EXPECT_TRUE(t.Get("k", &value).IsNotFound());
  ASSERT_TRUE(t.Append("k", "fresh").ok());
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value, "fresh");
}

TEST(TableTest, ApplyBatchIsAtomicallyVisible) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  WriteBatch batch;
  batch.Put("x", "1");
  batch.Append("y", "2");
  batch.Delete("z");
  ASSERT_TRUE(t.Apply(batch).ok());
  std::string value;
  EXPECT_TRUE(t.Get("x", &value).ok());
  EXPECT_TRUE(t.Get("y", &value).ok());
}

TEST(TableTest, ScanMergesSourcesInKeyOrder) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  ASSERT_TRUE(t.Put("b", "2").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Put("a", "1").ok());
  ASSERT_TRUE(t.Put("c", "3").ok());
  std::vector<std::string> keys;
  ASSERT_TRUE(t.Scan("", "",
                     [&](std::string_view k, std::string_view) {
                       keys.emplace_back(k);
                       return true;
                     })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TableTest, ScanRangeAndEarlyStop) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  for (std::string k : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(t.Put(k, "v").ok());
  }
  std::vector<std::string> keys;
  ASSERT_TRUE(t.Scan("b", "d",
                     [&](std::string_view k, std::string_view) {
                       keys.emplace_back(k);
                       return true;
                     })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"b", "c"}));

  keys.clear();
  ASSERT_TRUE(t.Scan("", "",
                     [&](std::string_view k, std::string_view) {
                       keys.emplace_back(k);
                       return false;  // early stop
                     })
                  .ok());
  EXPECT_EQ(keys.size(), 1u);
}

TEST(TableTest, ScanFoldsAppendsAcrossSegments) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  ASSERT_TRUE(t.Append("k", "a").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Append("k", "b").ok());
  std::string folded;
  ASSERT_TRUE(t.Scan("", "",
                     [&](std::string_view, std::string_view v) {
                       folded = std::string(v);
                       return true;
                     })
                  .ok());
  EXPECT_EQ(folded, "ab");
}

TEST(TableTest, ScanSkipsDeleted) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  ASSERT_TRUE(t.Put("a", "1").ok());
  ASSERT_TRUE(t.Put("b", "2").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Delete("a").ok());
  std::vector<std::string> keys;
  ASSERT_TRUE(t.Scan("", "",
                     [&](std::string_view k, std::string_view) {
                       keys.emplace_back(k);
                       return true;
                     })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"b"}));
}

TEST(TableTest, ScanPrefix) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  for (std::string k : {"ab1", "ab2", "ac3", "b"}) {
    ASSERT_TRUE(t.Put(k, "v").ok());
  }
  std::vector<std::string> keys;
  ASSERT_TRUE(t.ScanPrefix("ab",
                           [&](std::string_view k, std::string_view) {
                             keys.emplace_back(k);
                             return true;
                           })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"ab1", "ab2"}));
}

TEST(TableTest, CompactMergesToSingleSegmentAndDropsTombstones) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  ASSERT_TRUE(t.Append("k", "a").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Append("k", "b").ok());
  ASSERT_TRUE(t.Put("gone", "x").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Delete("gone").ok());
  ASSERT_TRUE(t.Compact().ok());
  EXPECT_EQ(t.NumSegments(), 1u);
  std::string value;
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value, "ab");
  EXPECT_TRUE(t.Get("gone", &value).IsNotFound());
  // Appends after compaction still fold on the merged base.
  ASSERT_TRUE(t.Append("k", "c").ok());
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value, "abc");
}

TEST(TableTest, AutoFlushOnThreshold) {
  TableOptions options = InMemoryOptions();
  options.memtable_flush_bytes = 256;
  auto table = Table::Open("", "t", options);
  Table& t = **table;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(t.Put("key" + std::to_string(i), std::string(32, 'v')).ok());
  }
  EXPECT_GT(t.NumSegments(), 0u);
}

TEST(TableTest, PersistenceAcrossReopen) {
  TempDir dir;
  TableOptions options;  // WAL on, disk mode
  {
    auto table = Table::Open(dir.str(), "t", options);
    ASSERT_TRUE(table.ok()) << table.status();
    ASSERT_TRUE((*table)->Put("durable", "yes").ok());
    ASSERT_TRUE((*table)->Append("list", "1").ok());
    ASSERT_TRUE((*table)->Flush().ok());
    ASSERT_TRUE((*table)->Append("list", "2").ok());  // only in WAL
  }
  {
    auto table = Table::Open(dir.str(), "t", options);
    ASSERT_TRUE(table.ok()) << table.status();
    std::string value;
    ASSERT_TRUE((*table)->Get("durable", &value).ok());
    EXPECT_EQ(value, "yes");
    ASSERT_TRUE((*table)->Get("list", &value).ok());
    EXPECT_EQ(value, "12");  // segment + WAL replay
  }
}

TEST(TableTest, ConcurrentAppendsAllLand) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  const int kThreads = 4, kPerThread = 250;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(t.Append("counter", "x").ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string value;
  ASSERT_TRUE(t.Get("counter", &value).ok());
  EXPECT_EQ(value.size(), static_cast<size_t>(kThreads * kPerThread));
}

// Property test: a table behaves like a std::map with append semantics
// under a random operation sequence with interleaved flush/compact.
TEST(TablePropertyTest, MatchesReferenceModel) {
  Rng rng(99);
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  std::map<std::string, std::string> model;
  for (int step = 0; step < 3000; ++step) {
    std::string key = "k" + std::to_string(rng.NextBounded(40));
    uint64_t op = rng.NextBounded(100);
    if (op < 35) {
      std::string v = "p" + std::to_string(rng.NextBounded(1000));
      ASSERT_TRUE(t.Put(key, v).ok());
      model[key] = v;
    } else if (op < 75) {
      std::string v = "+a" + std::to_string(rng.NextBounded(10));
      ASSERT_TRUE(t.Append(key, v).ok());
      model[key] += v;
    } else if (op < 90) {
      ASSERT_TRUE(t.Delete(key).ok());
      model.erase(key);
    } else if (op < 97) {
      ASSERT_TRUE(t.Flush().ok());
    } else {
      ASSERT_TRUE(t.Compact().ok());
    }
    // Spot-check a random key each step; full check periodically.
    std::string got;
    Status s = t.Get(key, &got);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << "step " << step << " key " << key;
    } else {
      ASSERT_TRUE(s.ok()) << "step " << step << " key " << key;
      EXPECT_EQ(got, it->second) << "step " << step << " key " << key;
    }
  }
  // Final full comparison via scan.
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE(t.Scan("", "",
                     [&](std::string_view k, std::string_view v) {
                       scanned.emplace(std::string(k), std::string(v));
                       return true;
                     })
                  .ok());
  EXPECT_EQ(scanned, model);
}

// ---------------------------------------------------------------------------
// BloomFilter
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) {
    bloom.Add("key" + std::to_string(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.MayContain("key" + std::to_string(i))) << i;
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter bloom(1000, 10);
  for (int i = 0; i < 1000; ++i) {
    bloom.Add("key" + std::to_string(i));
  }
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (bloom.MayContain("absent" + std::to_string(i))) ++false_positives;
  }
  EXPECT_LT(false_positives, 500);  // ~1% expected, 5% generous bound
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter bloom(0);
  EXPECT_FALSE(bloom.MayContain("anything"));
}

TEST(SegmentTest, BloomShortCircuitsAbsentKeys) {
  SegmentBuilder builder;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(builder
                    .Add(StringPrintf("key%04d", i), RecordKind::kPut, "v")
                    .ok());
  }
  auto segment = Segment::FromBuffer(builder.Finish());
  ASSERT_TRUE(segment.ok());
  EXPECT_TRUE((*segment)->MayContain("key0042"));
  auto hit = (*segment)->Find("key0042");
  ASSERT_TRUE(hit.ok());
  EXPECT_NE(*hit, nullptr);
  // Find of an absent key must agree with the full search regardless of
  // whether the bloom pre-test fires.
  auto miss = (*segment)->Find("nope");
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(*miss, nullptr);
}

// ---------------------------------------------------------------------------
// Auto compaction
// ---------------------------------------------------------------------------

TEST(TableTest, AutoCompactionBoundsSegmentCount) {
  TableOptions options = InMemoryOptions();
  options.memtable_flush_bytes = 128;
  options.max_segments = 3;
  auto table = Table::Open("", "t", options);
  Table& t = **table;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        t.Put("key" + std::to_string(i % 40), std::string(24, 'v')).ok());
  }
  EXPECT_LE(t.NumSegments(), 3u);
  // Data survives the background merges.
  std::string value;
  ASSERT_TRUE(t.Get("key7", &value).ok());
}

// ---------------------------------------------------------------------------
// RewriteValue
// ---------------------------------------------------------------------------

TEST(TableTest, RewriteValueFoldsAndCommitsAtomically) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  ASSERT_TRUE(t.Append("k", "ca").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Append("k", "b").ok());
  Status s = t.RewriteValue("k", [](std::string_view current,
                                    std::string* rewritten) {
    // The callback sees the fully folded value (base + fragments).
    EXPECT_EQ(current, "cab");
    rewritten->assign(current);
    std::sort(rewritten->begin(), rewritten->end());
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s;
  std::string value;
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value, "abc");
  // The rewrite is a Put base: later appends extend it.
  ASSERT_TRUE(t.Append("k", "z").ok());
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value, "abcz");
}

TEST(TableTest, RewriteValueMissingKeyAndCallbackError) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  auto no_op = [](std::string_view, std::string*) { return Status::OK(); };
  EXPECT_TRUE(t.RewriteValue("ghost", no_op).IsNotFound());
  ASSERT_TRUE(t.Put("k", "v").ok());
  const uint64_t version = t.Version();
  Status s = t.RewriteValue("k", [](std::string_view, std::string*) {
    return Status::Corruption("refused");
  });
  EXPECT_TRUE(s.IsCorruption());
  // A failed rewrite writes nothing and does not bump the version.
  EXPECT_EQ(t.Version(), version);
  std::string value;
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value, "v");
}

TEST(TableTest, RewriteValueBumpsVersion) {
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  ASSERT_TRUE(t.Append("k", "x").ok());
  const uint64_t before = t.Version();
  ASSERT_TRUE(t.RewriteValue("k", [](std::string_view current,
                                     std::string* rewritten) {
                 rewritten->assign(current);
                 return Status::OK();
               }).ok());
  EXPECT_GT(t.Version(), before);
}

TEST(TableTest, RewriteValueSurvivesReopen) {
  TempDir dir;
  TableOptions options;  // WAL on, disk mode
  {
    auto table = Table::Open(dir.str(), "t", options);
    Table& t = **table;
    ASSERT_TRUE(t.Append("k", "3").ok());
    ASSERT_TRUE(t.Append("k", "1").ok());
    ASSERT_TRUE(t.Append("k", "2").ok());
    ASSERT_TRUE(t.RewriteValue("k", [](std::string_view current,
                                       std::string* rewritten) {
                   rewritten->assign(current);
                   std::sort(rewritten->begin(), rewritten->end());
                   return Status::OK();
                 }).ok());
    // No Flush: the fold must be recoverable from the WAL alone.
  }
  auto reopened = Table::Open(dir.str(), "t", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::string value;
  ASSERT_TRUE((*reopened)->Get("k", &value).ok());
  EXPECT_EQ(value, "123");
}

TEST(TableTest, RewriteValueNeverLosesConcurrentAppends) {
  // The lost-update hazard RewriteValue exists to close: appends landing
  // while folds run must all survive into the final folded value.
  auto table = Table::Open("", "t", InMemoryOptions());
  Table& t = **table;
  ASSERT_TRUE(t.Append("k", "s").ok());
  constexpr int kWriters = 4;
  constexpr int kAppendsPerWriter = 500;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&t] {
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        ASSERT_TRUE(t.Append("k", "x").ok());
      }
    });
  }
  std::thread folder([&t] {
    for (int i = 0; i < 200; ++i) {
      Status s = t.RewriteValue("k", [](std::string_view current,
                                        std::string* rewritten) {
        rewritten->assign(current);
        std::sort(rewritten->begin(), rewritten->end());
        return Status::OK();
      });
      ASSERT_TRUE(s.ok()) << s;
    }
  });
  for (auto& w : writers) w.join();
  folder.join();
  std::string value;
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value.size(), 1u + kWriters * kAppendsPerWriter);
  EXPECT_EQ(std::count(value.begin(), value.end(), 'x'),
            kWriters * kAppendsPerWriter);
}

TEST(ShardedTableTest, RewriteValueRoutesToOwningShard) {
  auto table = ShardedTable::Open("", "t", 4, InMemoryOptions());
  ShardedTable& t = **table;
  for (int i = 0; i < 32; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(t.Append(key, "b").ok());
    ASSERT_TRUE(t.Append(key, "a").ok());
  }
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(t.RewriteValue("k" + std::to_string(i),
                               [](std::string_view current,
                                  std::string* rewritten) {
                                 rewritten->assign(current);
                                 std::sort(rewritten->begin(),
                                           rewritten->end());
                                 return Status::OK();
                               })
                    .ok());
  }
  std::string value;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(t.Get("k" + std::to_string(i), &value).ok());
    EXPECT_EQ(value, "ab");
  }
  EXPECT_TRUE(t.RewriteValue("ghost", [](std::string_view, std::string*) {
                 return Status::OK();
               }).IsNotFound());
}

// ---------------------------------------------------------------------------
// ShardedTable
// ---------------------------------------------------------------------------

TEST(ShardedTableTest, RoutesAndReadsBack) {
  auto table = ShardedTable::Open("", "t", 8, InMemoryOptions());
  ASSERT_TRUE(table.ok()) << table.status();
  ShardedTable& t = **table;
  EXPECT_EQ(t.num_shards(), 8u);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.Put("key" + std::to_string(i), "v" + std::to_string(i))
                    .ok());
  }
  std::string value;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.Get("key" + std::to_string(i), &value).ok());
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
  EXPECT_TRUE(t.Get("ghost", &value).IsNotFound());
  EXPECT_EQ(t.ApproximateEntryCount(), 200u);
}

TEST(ShardedTableTest, ZeroShardsRejected) {
  EXPECT_FALSE(ShardedTable::Open("", "t", 0, InMemoryOptions()).ok());
}

TEST(ShardedTableTest, AppendsFoldPerKey) {
  auto table = ShardedTable::Open("", "t", 4, InMemoryOptions());
  ShardedTable& t = **table;
  ASSERT_TRUE(t.Append("k", "a").ok());
  ASSERT_TRUE(t.Flush().ok());
  ASSERT_TRUE(t.Append("k", "b").ok());
  std::string value;
  ASSERT_TRUE(t.Get("k", &value).ok());
  EXPECT_EQ(value, "ab");
  ASSERT_TRUE(t.Delete("k").ok());
  EXPECT_FALSE(t.Contains("k"));
}

TEST(ShardedTableTest, ApplySplitsBatchAcrossShards) {
  auto table = ShardedTable::Open("", "t", 4, InMemoryOptions());
  ShardedTable& t = **table;
  WriteBatch batch;
  for (int i = 0; i < 100; ++i) {
    batch.Append("k" + std::to_string(i), "x");
  }
  ASSERT_TRUE(t.Apply(batch).ok());
  size_t found = 0;
  for (int i = 0; i < 100; ++i) {
    if (t.Contains("k" + std::to_string(i))) ++found;
  }
  EXPECT_EQ(found, 100u);
}

TEST(ShardedTableTest, ScanMergesShardsInKeyOrder) {
  auto table = ShardedTable::Open("", "t", 4, InMemoryOptions());
  ShardedTable& t = **table;
  for (char c = 'a'; c <= 'j'; ++c) {
    ASSERT_TRUE(t.Put(std::string(1, c), "v").ok());
  }
  std::vector<std::string> keys;
  ASSERT_TRUE(t.Scan("b", "h",
                     [&](std::string_view k, std::string_view) {
                       keys.emplace_back(k);
                       return true;
                     })
                  .ok());
  ASSERT_EQ(keys.size(), 6u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.front(), "b");
  EXPECT_EQ(keys.back(), "g");
}

TEST(ShardedTableTest, PersistsAcrossReopen) {
  TempDir dir;
  {
    auto table = ShardedTable::Open(dir.str(), "t", 3, TableOptions{});
    ASSERT_TRUE(table.ok()) << table.status();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*table)->Put("key" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE((*table)->Flush().ok());
  }
  {
    auto table = ShardedTable::Open(dir.str(), "t", 3, TableOptions{});
    ASSERT_TRUE(table.ok()) << table.status();
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE((*table)->Contains("key" + std::to_string(i)));
    }
  }
}

TEST(ShardedTableTest, ConcurrentBatchesLand) {
  auto table = ShardedTable::Open("", "t", 8, InMemoryOptions());
  ShardedTable& t = **table;
  const int kThreads = 4, kPerThread = 100;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t, w] {
      WriteBatch batch;
      for (int i = 0; i < kPerThread; ++i) {
        batch.Append("key" + std::to_string(i), std::to_string(w));
      }
      ASSERT_TRUE(t.Apply(batch).ok());
    });
  }
  for (auto& th : threads) th.join();
  std::string value;
  for (int i = 0; i < kPerThread; ++i) {
    ASSERT_TRUE(t.Get("key" + std::to_string(i), &value).ok());
    EXPECT_EQ(value.size(), static_cast<size_t>(kThreads));
  }
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

TEST(DatabaseTest, InMemoryTables) {
  DbOptions options;
  options.table.in_memory = true;
  options.table.use_wal = false;
  auto db = Database::Open("", options);
  ASSERT_TRUE(db.ok()) << db.status();
  auto t = (*db)->GetOrCreateTable("index");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*t)->Put("k", "v").ok());
  EXPECT_EQ((*db)->GetTable("index"), *t);
  EXPECT_EQ((*db)->GetTable("missing"), nullptr);
  EXPECT_EQ((*db)->TableNames(), std::vector<std::string>{"index"});
}

TEST(DatabaseTest, RequiresDirUnlessInMemory) {
  EXPECT_FALSE(Database::Open("", DbOptions{}).ok());
}

TEST(DatabaseTest, RediscoversTablesOnReopen) {
  TempDir dir;
  {
    auto db = Database::Open(dir.str());
    ASSERT_TRUE(db.ok()) << db.status();
    auto t = (*db)->GetOrCreateTable("alpha");
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Put("k", "v").ok());
    ASSERT_TRUE((*db)->FlushAll().ok());
    auto t2 = (*db)->GetOrCreateTable("beta");
    ASSERT_TRUE(t2.ok());
    ASSERT_TRUE((*t2)->Put("x", "y").ok());  // WAL only
  }
  {
    auto db = Database::Open(dir.str());
    ASSERT_TRUE(db.ok()) << db.status();
    auto names = (*db)->TableNames();
    EXPECT_EQ(names, (std::vector<std::string>{"alpha", "beta"}));
    std::string value;
    ASSERT_TRUE((*db)->GetTable("alpha")->Get("k", &value).ok());
    EXPECT_EQ(value, "v");
    ASSERT_TRUE((*db)->GetTable("beta")->Get("x", &value).ok());
    EXPECT_EQ(value, "y");
  }
}

TEST(DatabaseTest, DropTableRemovesFiles) {
  TempDir dir;
  {
    auto db = Database::Open(dir.str());
    auto t = (*db)->GetOrCreateTable("victim");
    ASSERT_TRUE((*t)->Put("k", "v").ok());
    ASSERT_TRUE((*db)->FlushAll().ok());
    ASSERT_TRUE((*db)->DropTable("victim").ok());
    EXPECT_EQ((*db)->GetTable("victim"), nullptr);
    EXPECT_TRUE((*db)->DropTable("victim").IsNotFound());
  }
  auto db = Database::Open(dir.str());
  EXPECT_TRUE((*db)->TableNames().empty());
}

TEST(DatabaseTest, ShardedTableAdoptsDiscoveredShards) {
  TempDir dir;
  {
    auto db = Database::Open(dir.str());
    ASSERT_TRUE(db.ok());
    auto t = (*db)->GetOrCreateShardedTable("logical", 4);
    ASSERT_TRUE(t.ok()) << t.status();
    ASSERT_TRUE((*t)->Put("k", "v").ok());
    ASSERT_TRUE((*db)->FlushAll().ok());
  }
  {
    // Reopen: the shard files are discovered as plain tables first, then
    // adopted into the logical sharded table without double-opening.
    auto db = Database::Open(dir.str());
    ASSERT_TRUE(db.ok());
    auto t = (*db)->GetOrCreateShardedTable("logical", 4);
    ASSERT_TRUE(t.ok()) << t.status();
    std::string value;
    ASSERT_TRUE((*t)->Get("k", &value).ok());
    EXPECT_EQ(value, "v");
    // The physical shards moved out of the plain-table map.
    EXPECT_EQ((*db)->GetTable("logical_s00"), nullptr);
  }
}

TEST(DatabaseTest, ShardedTableCachedAndShardCountChecked) {
  DbOptions options;
  options.table.in_memory = true;
  options.table.use_wal = false;
  auto db = Database::Open("", options);
  auto a = (*db)->GetOrCreateShardedTable("t", 4);
  auto b = (*db)->GetOrCreateShardedTable("t", 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE((*db)->GetOrCreateShardedTable("t", 8).ok());
}

TEST(DatabaseTest, CompactAll) {
  DbOptions options;
  options.table.in_memory = true;
  options.table.use_wal = false;
  auto db = Database::Open("", options);
  auto t = (*db)->GetOrCreateTable("t");
  ASSERT_TRUE((*t)->Append("k", "1").ok());
  ASSERT_TRUE((*t)->Flush().ok());
  ASSERT_TRUE((*t)->Append("k", "2").ok());
  ASSERT_TRUE((*db)->CompactAll().ok());
  EXPECT_EQ((*t)->NumSegments(), 1u);
}

}  // namespace
}  // namespace seqdet::storage
