#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "index/sequence_index.h"
#include "log/event_log.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "storage/database.h"

namespace seqdet::server {
namespace {

/// Blocking single-request HTTP client for the tests.
std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request = "GET " + target +
                        " HTTP/1.1\r\nHost: localhost\r\n"
                        "Connection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// ---------------------------------------------------------------------------
// HttpServer primitives
// ---------------------------------------------------------------------------

TEST(UrlDecodeTest, DecodesEscapes) {
  EXPECT_EQ(HttpServer::UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(HttpServer::UrlDecode("A-%3E%22x%22"), "A->\"x\"");
  EXPECT_EQ(HttpServer::UrlDecode("plain"), "plain");
  EXPECT_EQ(HttpServer::UrlDecode("bad%zz"), "bad%zz");  // invalid stays
}

TEST(ParseQueryStringTest, SplitsPairs) {
  auto q = HttpServer::ParseQueryString("a=1&b=x%20y&flag&empty=");
  EXPECT_EQ(q["a"], "1");
  EXPECT_EQ(q["b"], "x y");
  EXPECT_EQ(q.count("flag"), 1u);
  EXPECT_EQ(q["empty"], "");
}

TEST(JsonWriterTest, BuildsNestedDocument) {
  JsonWriter json;
  json.BeginObject()
      .Key("name")
      .String("a\"b\n")
      .Key("n")
      .Int(-5)
      .Key("list")
      .BeginArray()
      .Int(1)
      .Int(2)
      .EndArray()
      .Key("ok")
      .Bool(true)
      .EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"a\\\"b\\n\",\"n\":-5,\"list\":[1,2],\"ok\":true}");
}

TEST(HttpServerTest, RoutesAndNotFound) {
  HttpServer server;
  server.Route("/hello", [](const HttpRequest& r) {
    auto it = r.query.find("name");
    return HttpResponse::Json("{\"hi\":\"" +
                              (it == r.query.end() ? "world" : it->second) +
                              "\"}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  std::string ok = HttpGet(server.port(), "/hello?name=bob");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(ok), "{\"hi\":\"bob\"}");

  std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server;
  server.Route("/x", [](const HttpRequest&) {
    return HttpResponse::Json("{}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(HttpGet(server.port(), "/x").find("200"), std::string::npos);
  server.Stop();
}

// ---------------------------------------------------------------------------
// QueryService end-to-end
// ---------------------------------------------------------------------------

struct ServiceFixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<index::SequenceIndex> index;
  std::unique_ptr<QueryService> service;
  HttpServer server;

  ServiceFixture() {
    storage::DbOptions options;
    options.table.in_memory = true;
    options.table.use_wal = false;
    db = std::move(storage::Database::Open("", options)).value();
    index::IndexOptions idx_options;
    idx_options.num_threads = 1;
    index =
        std::move(index::SequenceIndex::Open(db.get(), idx_options)).value();
    eventlog::EventLog log;
    log.Append(1, "search", 1);
    log.Append(1, "cart", 5);
    log.Append(1, "checkout", 9);
    log.Append(2, "search", 2);
    log.Append(2, "cart", 90);
    log.SortAllTraces();
    EXPECT_TRUE(index->Update(log).ok());
    service = std::make_unique<QueryService>(index.get());
    service->RegisterRoutes(&server);
    EXPECT_TRUE(server.Start(0).ok());
  }
  ~ServiceFixture() { server.Stop(); }
};

TEST(QueryServiceTest, Health) {
  ServiceFixture f;
  std::string body = BodyOf(HttpGet(f.server.port(), "/health"));
  EXPECT_EQ(body, "{\"status\":\"ok\"}");
}

TEST(QueryServiceTest, Info) {
  ServiceFixture f;
  std::string body = BodyOf(HttpGet(f.server.port(), "/info"));
  EXPECT_NE(body.find("\"policy\":\"STNM\""), std::string::npos);
  EXPECT_NE(body.find("\"activities\":3"), std::string::npos);
}

TEST(QueryServiceTest, DetectWithConstraints) {
  ServiceFixture f;
  // search -> cart, unconstrained: both traces.
  std::string all =
      BodyOf(HttpGet(f.server.port(), "/detect?q=search+-%3E+cart"));
  EXPECT_NE(all.find("\"total\":2"), std::string::npos);
  // gap <= 10 excludes trace 2 (gap 88).
  std::string constrained = BodyOf(HttpGet(
      f.server.port(), "/detect?q=search+-%3E+cart+gap+%3C%3D+10"));
  EXPECT_NE(constrained.find("\"total\":1"), std::string::npos);
  EXPECT_NE(constrained.find("\"trace\":1"), std::string::npos);
}

TEST(QueryServiceTest, DetectErrors) {
  ServiceFixture f;
  EXPECT_NE(HttpGet(f.server.port(), "/detect").find("400"),
            std::string::npos);
  EXPECT_NE(HttpGet(f.server.port(), "/detect?q=ghost").find("400"),
            std::string::npos);
}

TEST(QueryServiceTest, Stats) {
  ServiceFixture f;
  std::string body = BodyOf(
      HttpGet(f.server.port(), "/stats?q=search+-%3E+cart&last=1"));
  EXPECT_NE(body.find("\"completions\":2"), std::string::npos);
  EXPECT_NE(body.find("\"last_completion\":90"), std::string::npos);
}

TEST(QueryServiceTest, ContinueModes) {
  ServiceFixture f;
  for (std::string mode : {"accurate", "fast", "hybrid"}) {
    std::string body = BodyOf(HttpGet(
        f.server.port(), "/continue?q=search&mode=" + mode + "&topk=2"));
    EXPECT_NE(body.find("\"activity\":\"cart\""), std::string::npos)
        << mode << ": " << body;
  }
  EXPECT_NE(HttpGet(f.server.port(), "/continue?q=search&mode=bogus")
                .find("400"),
            std::string::npos);
}

TEST(QueryServiceTest, MalformedHttpGets400) {
  ServiceFixture f;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(f.server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string garbage = "NONSENSE\r\n\r\n";
  ::send(fd, garbage.data(), garbage.size(), 0);
  char buffer[512];
  ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  ::close(fd);
  ASSERT_GT(n, 0);
  EXPECT_NE(std::string(buffer, static_cast<size_t>(n)).find("400"),
            std::string::npos);
}

}  // namespace
}  // namespace seqdet::server
