#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "common/timer.h"
#include "common/unique_fd.h"
#include "gtest/gtest.h"
#include "index/sequence_index.h"
#include "log/event_log.h"
#include "query/pattern_parser.h"
#include "query/query_processor.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "storage/database.h"

namespace seqdet::server {
namespace {

/// Blocking single-request HTTP client for the tests.
std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request = "GET " + target +
                        " HTTP/1.1\r\nHost: localhost\r\n"
                        "Connection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  seqdet::UniqueFd{fd};  // close now
  return response;
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// ---------------------------------------------------------------------------
// HttpServer primitives
// ---------------------------------------------------------------------------

TEST(UrlDecodeTest, DecodesEscapes) {
  EXPECT_EQ(HttpServer::UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(HttpServer::UrlDecode("A-%3E%22x%22"), "A->\"x\"");
  EXPECT_EQ(HttpServer::UrlDecode("plain"), "plain");
  EXPECT_EQ(HttpServer::UrlDecode("bad%zz"), "bad%zz");  // invalid stays
}

TEST(ParseQueryStringTest, SplitsPairs) {
  auto q = HttpServer::ParseQueryString("a=1&b=x%20y&flag&empty=");
  EXPECT_EQ(q["a"], "1");
  EXPECT_EQ(q["b"], "x y");
  EXPECT_EQ(q.count("flag"), 1u);
  EXPECT_EQ(q["empty"], "");
}

TEST(JsonWriterTest, BuildsNestedDocument) {
  JsonWriter json;
  json.BeginObject()
      .Key("name")
      .String("a\"b\n")
      .Key("n")
      .Int(-5)
      .Key("list")
      .BeginArray()
      .Int(1)
      .Int(2)
      .EndArray()
      .Key("ok")
      .Bool(true)
      .EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"a\\\"b\\n\",\"n\":-5,\"list\":[1,2],\"ok\":true}");
}

// ---------------------------------------------------------------------------
// ParseRequest edge cases
// ---------------------------------------------------------------------------

constexpr size_t kMaxBytes = 1u << 20;

HttpServer::ParseOutcome Parse(const std::string& in, HttpRequest* out,
                               size_t* consumed,
                               size_t max_bytes = kMaxBytes) {
  std::string error;
  return HttpServer::ParseRequest(in, max_bytes, out, consumed, &error);
}

TEST(ParseRequestTest, ParsesFullRequest) {
  HttpRequest request;
  size_t consumed = 0;
  std::string raw =
      "GET /detect?q=a%20-%3E%20b&limit=5 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Custom:  spaced value \r\n\r\n";
  ASSERT_EQ(Parse(raw, &request, &consumed), HttpServer::ParseOutcome::kOk);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/detect");
  EXPECT_EQ(request.query["q"], "a -> b");  // percent-decoded
  EXPECT_EQ(request.query["limit"], "5");
  EXPECT_EQ(request.headers["host"], "localhost");    // key lowercased
  EXPECT_EQ(request.headers["x-custom"], "spaced value");  // value trimmed
  EXPECT_TRUE(request.keep_alive);  // HTTP/1.1 default
}

TEST(ParseRequestTest, IncompleteNeedsMoreBytes) {
  HttpRequest request;
  size_t consumed = 0;
  std::string raw = "GET /x HTTP/1.1\r\nHost: localhost\r\n\r\n";
  for (size_t len = 0; len < raw.size(); ++len) {
    EXPECT_EQ(Parse(raw.substr(0, len), &request, &consumed),
              HttpServer::ParseOutcome::kIncomplete)
        << "prefix of " << len << " bytes";
  }
  EXPECT_EQ(Parse(raw, &request, &consumed), HttpServer::ParseOutcome::kOk);
}

TEST(ParseRequestTest, MalformedRequestLines) {
  HttpRequest request;
  size_t consumed = 0;
  for (const std::string& raw :
       {std::string("NONSENSE\r\n\r\n"),           // no spaces at all
        std::string("GET /x\r\n\r\n"),             // missing version
        std::string("GET  HTTP/1.1\r\n\r\n"),      // empty target
        std::string(" /x HTTP/1.1\r\n\r\n"),       // empty method
        std::string("GET /x SPDY/3\r\n\r\n"),      // not HTTP/1.x
        std::string("GET /x HTTP/1.1 extra\r\n\r\n")}) {
    EXPECT_EQ(Parse(raw, &request, &consumed),
              HttpServer::ParseOutcome::kBad)
        << raw;
  }
}

TEST(ParseRequestTest, BadContentLengthIsRejected) {
  HttpRequest request;
  size_t consumed = 0;
  EXPECT_EQ(Parse("GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
                  &request, &consumed),
            HttpServer::ParseOutcome::kBad);
  EXPECT_EQ(Parse("GET /x HTTP/1.1\r\nContent-Length: -3\r\n\r\n", &request,
                  &consumed),
            HttpServer::ParseOutcome::kBad);
}

TEST(ParseRequestTest, OversizedHeadersAndBody) {
  HttpRequest request;
  size_t consumed = 0;
  // Headers that can never fit the budget are rejected before completion.
  std::string huge_header =
      "GET /x HTTP/1.1\r\nX-Pad: " + std::string(600, 'a');
  EXPECT_EQ(Parse(huge_header, &request, &consumed, /*max_bytes=*/512),
            HttpServer::ParseOutcome::kTooLarge);
  // A declared body that exceeds the budget is rejected from its header
  // alone (the server must not buffer it first).
  EXPECT_EQ(Parse("POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n",
                  &request, &consumed, /*max_bytes=*/512),
            HttpServer::ParseOutcome::kTooLarge);
}

TEST(ParseRequestTest, BodyAndPipeliningConsumeExactly) {
  HttpRequest request;
  size_t consumed = 0;
  std::string first =
      "POST /a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  std::string second = "GET /b HTTP/1.1\r\n\r\n";
  std::string raw = first + second;
  ASSERT_EQ(Parse(raw, &request, &consumed), HttpServer::ParseOutcome::kOk);
  EXPECT_EQ(consumed, first.size());
  EXPECT_EQ(request.path, "/a");
  EXPECT_EQ(request.body, "hello");
  // The leftover parses as the next pipelined request.
  ASSERT_EQ(Parse(raw.substr(consumed), &request, &consumed),
            HttpServer::ParseOutcome::kOk);
  EXPECT_EQ(request.path, "/b");
  // Body only partially received: incomplete, not ok with a short body.
  EXPECT_EQ(Parse(first.substr(0, first.size() - 2), &request, &consumed),
            HttpServer::ParseOutcome::kIncomplete);
}

TEST(ParseRequestTest, ConnectionHeaderControlsKeepAlive) {
  HttpRequest request;
  size_t consumed = 0;
  ASSERT_EQ(Parse("GET /x HTTP/1.0\r\n\r\n", &request, &consumed),
            HttpServer::ParseOutcome::kOk);
  EXPECT_FALSE(request.keep_alive);  // HTTP/1.0 default
  ASSERT_EQ(Parse("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
                  &request, &consumed),
            HttpServer::ParseOutcome::kOk);
  EXPECT_TRUE(request.keep_alive);
  ASSERT_EQ(Parse("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n", &request,
                  &consumed),
            HttpServer::ParseOutcome::kOk);
  EXPECT_FALSE(request.keep_alive);
}

TEST(HttpServerTest, RoutesAndNotFound) {
  HttpServer server;
  server.Route("/hello", [](const HttpRequest& r) {
    auto it = r.query.find("name");
    return HttpResponse::Json("{\"hi\":\"" +
                              (it == r.query.end() ? "world" : it->second) +
                              "\"}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  std::string ok = HttpGet(server.port(), "/hello?name=bob");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(ok), "{\"hi\":\"bob\"}");

  std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server;
  server.Route("/x", [](const HttpRequest&) {
    return HttpResponse::Json("{}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(HttpGet(server.port(), "/x").find("200"), std::string::npos);
  server.Stop();
}

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

std::string RecvUntilClosed(int fd) {
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  return response;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(HttpServerTest, PipelinedKeepAliveRequests) {
  HttpServer server;
  server.Route("/echo", [](const HttpRequest& r) {
    auto it = r.query.find("n");
    return HttpResponse::Json("{\"n\":" +
                              (it == r.query.end() ? "0" : it->second) + "}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  int fd = ConnectTo(server.port());
  // Three requests in one write; the last closes the connection so the
  // test can read to EOF.
  std::string pipelined =
      "GET /echo?n=1 HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /echo?n=2 HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /echo?n=3 HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, pipelined.data(), pipelined.size(), 0),
            static_cast<ssize_t>(pipelined.size()));
  std::string response = RecvUntilClosed(fd);
  seqdet::UniqueFd{fd};  // close now
  EXPECT_EQ(CountOccurrences(response, "200 OK"), 3u);
  EXPECT_NE(response.find("{\"n\":1}"), std::string::npos);
  EXPECT_NE(response.find("{\"n\":2}"), std::string::npos);
  EXPECT_NE(response.find("{\"n\":3}"), std::string::npos);
  EXPECT_EQ(server.stats().requests_served, 3u);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
  server.Stop();
}

TEST(HttpServerTest, PartialWritesAcrossPackets) {
  HttpServer server;
  server.Route("/x", [](const HttpRequest&) {
    return HttpResponse::Json("{\"ok\":true}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  int fd = ConnectTo(server.port());
  std::string raw = "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n";
  // Dribble the request a few bytes at a time; the server must reassemble
  // it across reads instead of 400ing a partial prefix.
  for (size_t i = 0; i < raw.size(); i += 5) {
    size_t len = std::min<size_t>(5, raw.size() - i);
    ASSERT_EQ(::send(fd, raw.data() + i, len, 0), static_cast<ssize_t>(len));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::string response = RecvUntilClosed(fd);
  seqdet::UniqueFd{fd};  // close now
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("{\"ok\":true}"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, OversizedRequestGets413) {
  HttpServerOptions options;
  options.max_request_bytes = 512;
  HttpServer server(options);
  server.Route("/x", [](const HttpRequest&) {
    return HttpResponse::Json("{}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  int fd = ConnectTo(server.port());
  std::string raw = "GET /x HTTP/1.1\r\nX-Pad: " + std::string(1024, 'a') +
                    "\r\n\r\n";
  ::send(fd, raw.data(), raw.size(), 0);
  std::string response = RecvUntilClosed(fd);
  seqdet::UniqueFd{fd};  // close now
  EXPECT_NE(response.find("413"), std::string::npos);
  EXPECT_EQ(server.stats().bad_requests, 1u);
  server.Stop();
}

TEST(HttpServerTest, KeepAliveRequestLimitClosesConnection) {
  HttpServerOptions options;
  options.max_keepalive_requests = 2;
  HttpServer server(options);
  server.Route("/x", [](const HttpRequest&) {
    return HttpResponse::Json("{}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  HttpClient client(server.port());
  for (int i = 0; i < 5; ++i) {
    auto response = client.Get("/x");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
  // 5 requests at 2 per connection = at least 3 connections.
  EXPECT_GE(server.stats().connections_accepted, 3u);
  EXPECT_EQ(server.stats().requests_served, 5u);
  server.Stop();
}

TEST(HttpServerTest, StopDrainsInflightRequests) {
  HttpServer server;
  std::atomic<int> handled{0};
  server.Route("/slow", [&](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    handled.fetch_add(1);
    return HttpResponse::Json("{\"done\":true}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  std::string response;
  std::thread client([&] {
    response = HttpGet(server.port(), "/slow");
  });
  // Give the request time to reach the handler, then stop mid-flight:
  // Stop() must wait for the handler and let its response flush.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();
  client.join();
  EXPECT_EQ(handled.load(), 1);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("{\"done\":true}"), std::string::npos);
}

TEST(HttpClientTest, KeepAliveAndTransparentReconnect) {
  HttpServer server;
  server.Route("/x", [](const HttpRequest&) {
    return HttpResponse::Json("{}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  uint16_t port = server.port();
  HttpClient client(port);
  ASSERT_TRUE(client.Get("/x").ok());
  ASSERT_TRUE(client.Get("/x").ok());
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(server.stats().connections_accepted, 1u);
  // Restart the server: the client's connection is stale; Get must
  // reconnect instead of failing.
  server.Stop();
  ASSERT_TRUE(server.Start(port).ok());
  auto response = client.Get("/x");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  server.Stop();
}

size_t OpenFdCount() {
  size_t count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  return count;
}

// Regression for the throwaway-client pattern the pool replaced: a
// request loop through the pool must ride one keep-alive connection, not
// dial (and strand) a socket per request.
TEST(HttpClientPoolTest, ReusesConnectionsWithoutLeakingFds) {
  HttpServer server;
  server.Route("/x", [](const HttpRequest&) {
    return HttpResponse::Json("{}");
  });
  ASSERT_TRUE(server.Start(0).ok());
  HttpClientPool pool;

  // Warm-up establishes the pooled connection and any lazy fds
  // (epoll, /proc handles) before the measured window.
  {
    auto handle = pool.Acquire("127.0.0.1", server.port());
    ASSERT_TRUE(handle->Get("/x").ok());
  }
  const size_t before = OpenFdCount();
  for (int i = 0; i < 200; ++i) {
    auto handle = pool.Acquire("127.0.0.1", server.port());
    auto response = handle->Get("/x");
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->status, 200);
  }
  const size_t after = OpenFdCount();
  EXPECT_LE(after, before + 4) << "fd count grew across pooled requests";

  auto stats = pool.stats();
  // The server's keep-alive request limit closes the connection every so
  // often, which correctly costs a re-dial; a leak would cost ~200.
  EXPECT_LE(stats.dials, 6u) << "pooled loop dialed per-request";
  EXPECT_GE(stats.reuses, 190u);
  EXPECT_EQ(stats.idle, 1u);
  server.Stop();
}

// Error-path fd stability: a pooled client that fails closes its socket
// and drops out of the pool (discarded, not re-parked), so repeated
// failures neither leak fds nor poison later acquires.
TEST(HttpClientPoolTest, FailedConnectionsAreDiscardedNotLeaked) {
  // A loopback port with nothing behind it: bind, read the number, close.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t dead_port = ntohs(addr.sin_port);
  seqdet::UniqueFd{probe};  // close now

  HttpClientPool pool;
  const size_t before = OpenFdCount();
  for (int i = 0; i < 50; ++i) {
    auto handle = pool.Acquire("127.0.0.1", dead_port);
    EXPECT_FALSE(handle->Get("/x").ok());
  }
  const size_t after = OpenFdCount();
  EXPECT_LE(after, before + 4) << "failed requests leaked fds";

  auto stats = pool.stats();
  EXPECT_EQ(stats.idle, 0u) << "a dead connection was parked in the pool";
  EXPECT_GE(stats.discards, 50u);
  EXPECT_EQ(stats.returns, 0u);
}

// ---------------------------------------------------------------------------
// QueryService end-to-end
// ---------------------------------------------------------------------------

struct ServiceFixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<index::SequenceIndex> index;
  std::unique_ptr<QueryService> service;
  HttpServer server;

  ServiceFixture() {
    storage::DbOptions options;
    options.table.in_memory = true;
    options.table.use_wal = false;
    db = std::move(storage::Database::Open("", options)).value();
    index::IndexOptions idx_options;
    idx_options.num_threads = 1;
    index =
        std::move(index::SequenceIndex::Open(db.get(), idx_options)).value();
    eventlog::EventLog log;
    log.Append(1, "search", 1);
    log.Append(1, "cart", 5);
    log.Append(1, "checkout", 9);
    log.Append(2, "search", 2);
    log.Append(2, "cart", 90);
    log.SortAllTraces();
    EXPECT_TRUE(index->Update(log).ok());
    service = std::make_unique<QueryService>(index.get());
    service->RegisterRoutes(&server);
    EXPECT_TRUE(server.Start(0).ok());
  }
  ~ServiceFixture() { server.Stop(); }
};

TEST(QueryServiceTest, Health) {
  ServiceFixture f;
  std::string body = BodyOf(HttpGet(f.server.port(), "/health"));
  EXPECT_EQ(body, "{\"status\":\"ok\"}");
}

TEST(QueryServiceTest, Info) {
  ServiceFixture f;
  std::string body = BodyOf(HttpGet(f.server.port(), "/info"));
  EXPECT_NE(body.find("\"policy\":\"STNM\""), std::string::npos);
  EXPECT_NE(body.find("\"activities\":3"), std::string::npos);
}

TEST(QueryServiceTest, DetectWithConstraints) {
  ServiceFixture f;
  // search -> cart, unconstrained: both traces.
  std::string all =
      BodyOf(HttpGet(f.server.port(), "/detect?q=search+-%3E+cart"));
  EXPECT_NE(all.find("\"total\":2"), std::string::npos);
  // gap <= 10 excludes trace 2 (gap 88).
  std::string constrained = BodyOf(HttpGet(
      f.server.port(), "/detect?q=search+-%3E+cart+gap+%3C%3D+10"));
  EXPECT_NE(constrained.find("\"total\":1"), std::string::npos);
  EXPECT_NE(constrained.find("\"trace\":1"), std::string::npos);
}

TEST(QueryServiceTest, DetectErrors) {
  ServiceFixture f;
  EXPECT_NE(HttpGet(f.server.port(), "/detect").find("400"),
            std::string::npos);
  EXPECT_NE(HttpGet(f.server.port(), "/detect?q=ghost").find("400"),
            std::string::npos);
}

TEST(QueryServiceTest, Stats) {
  ServiceFixture f;
  std::string body = BodyOf(
      HttpGet(f.server.port(), "/stats?q=search+-%3E+cart&last=1"));
  EXPECT_NE(body.find("\"completions\":2"), std::string::npos);
  EXPECT_NE(body.find("\"last_completion\":90"), std::string::npos);
}

TEST(QueryServiceTest, ContinueModes) {
  ServiceFixture f;
  for (std::string mode : {"accurate", "fast", "hybrid"}) {
    std::string body = BodyOf(HttpGet(
        f.server.port(), "/continue?q=search&mode=" + mode + "&topk=2"));
    EXPECT_NE(body.find("\"activity\":\"cart\""), std::string::npos)
        << mode << ": " << body;
  }
  EXPECT_NE(HttpGet(f.server.port(), "/continue?q=search&mode=bogus")
                .find("400"),
            std::string::npos);
}

TEST(QueryServiceTest, InfoIncludesServingStats) {
  ServiceFixture f;
  // Generate some traffic so the latency window is non-empty.
  for (int i = 0; i < 3; ++i) {
    HttpGet(f.server.port(), "/detect?q=search+-%3E+cart");
  }
  std::string body = BodyOf(HttpGet(f.server.port(), "/info"));
  EXPECT_NE(body.find("\"serving\":"), std::string::npos);
  EXPECT_NE(body.find("\"max_inflight\":64"), std::string::npos);
  EXPECT_NE(body.find("\"route\":\"/detect\""), std::string::npos);
  EXPECT_NE(body.find("\"p99_ms\":"), std::string::npos);
  EXPECT_NE(body.find("\"http\":"), std::string::npos);
  EXPECT_NE(body.find("\"connections_accepted\":"), std::string::npos);

  ServingStatsSnapshot stats = f.service->serving_stats();
  bool found_detect = false;
  for (const auto& route : stats.routes) {
    if (route.route != "/detect") continue;
    found_detect = true;
    EXPECT_EQ(route.requests, 3u);
    EXPECT_EQ(route.latency_samples, 3u);
    EXPECT_GE(route.p99_ms, route.p50_ms);
  }
  EXPECT_TRUE(found_detect);
}

TEST(QueryServiceTest, AdmissionControlSheds503) {
  ServiceFixture f;
  ServingOptions options;
  options.max_inflight = 1;
  options.retry_after_seconds = 7;
  options.debug_routes = true;
  QueryService service(f.index.get(), options);
  HttpServer server;
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());

  // Occupy the only in-flight slot with a sleeping request, then probe.
  std::thread holder([&] {
    HttpClient client(server.port());
    auto response = client.Get("/debug/sleep?ms=2000&deadline_ms=400");
    EXPECT_TRUE(response.ok());
  });
  HttpClient probe(server.port());
  Result<HttpClient::Response> shed = Status::Internal("unset");
  // Poll until the holder's request actually occupies the slot (the two
  // requests race through independent connections).
  for (int i = 0; i < 200; ++i) {
    shed = probe.Get("/detect?q=search+-%3E+cart");
    ASSERT_TRUE(shed.ok()) << shed.status().ToString();
    if (shed->status == 503) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(shed->status, 503);
  EXPECT_EQ(shed->headers.at("retry-after"), "7");
  holder.join();

  // Slot free again: the same query is admitted now.
  auto ok = probe.Get("/detect?q=search+-%3E+cart");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);

  ServingStatsSnapshot stats = service.serving_stats();
  EXPECT_GE(stats.shed_total, 1u);
  // /health is never gated: reachable even while the slot was taken.
  EXPECT_EQ(probe.Get("/health")->status, 200);
  server.Stop();
}

TEST(QueryServiceTest, DeadlineCancelsSleepWithin2xBudget) {
  ServiceFixture f;
  ServingOptions options;
  options.debug_routes = true;
  QueryService service(f.index.get(), options);
  HttpServer server;
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());
  HttpClient client(server.port());
  // A 5-second sleep under a 150 ms budget must come back 504 in well
  // under the sleep duration (the acceptance bar is 2x the budget; allow
  // generous slack for a loaded CI machine).
  Stopwatch watch;
  auto response = client.Get("/debug/sleep?ms=5000&deadline_ms=150");
  double elapsed_ms = watch.ElapsedMillis();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 504);
  EXPECT_LT(elapsed_ms, 2000.0);

  ServingStatsSnapshot stats = service.serving_stats();
  uint64_t timeouts = 0;
  for (const auto& route : stats.routes) timeouts += route.deadline_exceeded;
  EXPECT_EQ(timeouts, 1u);
  server.Stop();
}

TEST(QueryServiceTest, DeadlineCancelsExplodingDetectQuery) {
  // Skip-till-any-match with one repeated activity makes the pair join
  // combinatorial: C(k,2) postings per trace and exponentially many
  // partial matches per added pattern step — the realistic "runaway
  // query" a deadline budget exists for.
  storage::DbOptions db_options;
  db_options.table.in_memory = true;
  db_options.table.use_wal = false;
  auto db = std::move(storage::Database::Open("", db_options)).value();
  index::IndexOptions idx_options;
  idx_options.policy = index::Policy::kSkipTillAnyMatch;
  idx_options.num_threads = 1;
  auto index =
      std::move(index::SequenceIndex::Open(db.get(), idx_options)).value();
  eventlog::EventLog log;
  for (eventlog::TraceId trace = 0; trace < 40; ++trace) {
    for (int64_t ts = 0; ts < 40; ++ts) log.Append(trace, "tick", ts);
  }
  log.SortAllTraces();
  ASSERT_TRUE(index->Update(log).ok());

  QueryService service(index.get());
  HttpServer server;
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());
  HttpClient client(server.port());
  std::string q = HttpClient::UrlEncode("tick -> tick -> tick -> tick");
  Stopwatch watch;
  auto response = client.Get("/detect?q=" + q + "&deadline_ms=25");
  double elapsed_ms = watch.ElapsedMillis();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 504) << response->body;
  EXPECT_NE(response->body.find("deadline"), std::string::npos);
  // Cooperative cancellation fires within one polling stride of the
  // budget; 2 s of slack covers slow sanitizer builds.
  EXPECT_LT(elapsed_ms, 2000.0);

  // The same query without a deadline is in-process verifiable: Detect
  // with an expired budget aborts immediately.
  query::QueryProcessor qp(index.get());
  auto parsed = query::ParsePatternQuery("tick -> tick", index->dictionary());
  ASSERT_TRUE(parsed.ok());
  parsed->constraints.deadline = Deadline::After(0);
  auto aborted = qp.Detect(parsed->pattern, parsed->constraints);
  ASSERT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.status().IsAborted());
  server.Stop();
}

TEST(QueryServiceTest, MalformedHttpGets400) {
  ServiceFixture f;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(f.server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string garbage = "NONSENSE\r\n\r\n";
  ::send(fd, garbage.data(), garbage.size(), 0);
  char buffer[512];
  ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  seqdet::UniqueFd{fd};  // close now
  ASSERT_GT(n, 0);
  EXPECT_NE(std::string(buffer, static_cast<size_t>(n)).find("400"),
            std::string::npos);
}

}  // namespace
}  // namespace seqdet::server
