// Randomized differential-correctness harness: the index's Detect() versus
// an independent oracle computed from the raw log.
//
// The oracle never touches the index, the storage engine, or the posting
// codec: per consecutive pattern pair it asks the SASE NFA baseline (a raw
// log scan) for that pair's match set under the index's policy, then joins
// the pair sets exactly as Algorithm 2 does — a match whose last timestamp
// equals a posting's first timestamp extends by the posting's second. Any
// disagreement therefore implicates the index pipeline (extraction ->
// storage -> fold/upgrade -> decode -> join), not the oracle.
//
// Every configuration runs >= 1000 seeded random patterns (override with
// SEQDET_DIFF_PATTERNS) over a seeded random log. On failure the assert
// message carries the seed and the pattern; replay a failing seed with
//   SEQDET_DIFF_SEED=<seed> ./differential_test
//
// The extended pattern language (disjunction, Kleene+, negation, time
// windows — DESIGN.md section 14) has its own axis at the bottom of this
// file, with SaseEngine::DetectExtended as the oracle; filter it with
//   --gtest_filter='*Extended*'

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/sase/sase_engine.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/generators.h"
#include "gtest/gtest.h"
#include "index/index_tables.h"
#include "index/maintenance.h"
#include "index/sequence_index.h"
#include "query/pattern.h"
#include "query/query_processor.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "storage/database.h"

namespace seqdet {
namespace {

using baseline::SaseMatch;
using eventlog::ActivityId;
using eventlog::EventLog;
using eventlog::Timestamp;
using eventlog::TraceId;
using index::FoldStats;
using index::IndexOptions;
using index::Policy;
using index::SequenceIndex;
using query::DetectionConstraints;
using query::Pattern;
using query::PatternMatch;
using query::QueryProcessor;

uint64_t DiffSeed() {
  if (const char* env = std::getenv("SEQDET_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20210323;
}

size_t PatternsPerConfig() {
  if (const char* env = std::getenv("SEQDET_DIFF_PATTERNS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1000;
}

EventLog DiffLog(uint64_t seed) {
  datagen::RandomLogConfig config;
  config.num_traces = 150;
  config.max_events_per_trace = 40;
  config.num_activities = 10;
  config.seed = seed;
  config.mean_gap = 5;
  config.activity_skew = 0.3;
  return datagen::GenerateRandomLog(config);
}

struct Fixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<SequenceIndex> index;

  Fixture(const EventLog& log, Policy policy, uint32_t posting_format,
          size_t cache_bytes = 8u << 20) {
    storage::DbOptions db_options;
    db_options.table.in_memory = true;
    db_options.table.use_wal = false;
    db = std::move(storage::Database::Open("", db_options)).value();
    IndexOptions options;
    options.policy = policy;
    options.num_threads = 1;
    options.posting_format = posting_format;
    options.cache_bytes = cache_bytes;
    // Small blocks so folded lists span many blocks and the trace-selective
    // skip path actually skips.
    options.posting_block_bytes = 96;
    index = std::move(SequenceIndex::Open(db.get(), options)).value();
    auto stats = index->Update(log);
    EXPECT_TRUE(stats.ok()) << stats.status();
  }
};

/// Oracle side: SASE pair match sets, memoized per (first, second) pair and
/// indexed by (trace, first timestamp) for the Algorithm-2-style join.
class Oracle {
 public:
  Oracle(const EventLog* log, Policy policy)
      : engine_(log), policy_(policy) {}

  std::vector<PatternMatch> Detect(
      const std::vector<ActivityId>& pattern,
      const DetectionConstraints& constraints = {}) const {
    std::vector<PatternMatch> matches;
    const PairSet& first = PairMatches(pattern[0], pattern[1]);
    for (const SaseMatch& m : first.matches) {
      matches.push_back(PatternMatch{m.trace, m.timestamps});
    }
    for (size_t i = 1; i + 1 < pattern.size(); ++i) {
      const PairSet& next = PairMatches(pattern[i], pattern[i + 1]);
      std::vector<PatternMatch> extended;
      for (const PatternMatch& m : matches) {
        auto it = next.by_start.find({m.trace, m.timestamps.back()});
        if (it == next.by_start.end()) continue;
        for (Timestamp ts : it->second) {
          PatternMatch e = m;
          e.timestamps.push_back(ts);
          extended.push_back(std::move(e));
        }
      }
      matches = std::move(extended);
    }
    // The index applies the constraints during the join, but they are
    // monotone (a violated gap or span never un-violates as timestamps are
    // appended), so post-filtering is equivalent.
    std::erase_if(matches, [&constraints](const PatternMatch& m) {
      if (constraints.max_gap.has_value()) {
        for (size_t i = 1; i < m.timestamps.size(); ++i) {
          if (m.timestamps[i] - m.timestamps[i - 1] > *constraints.max_gap) {
            return true;
          }
        }
      }
      return constraints.max_span.has_value() &&
             m.timestamps.back() - m.timestamps.front() >
                 *constraints.max_span;
    });
    return matches;
  }

 private:
  struct PairSet {
    std::vector<SaseMatch> matches;
    std::map<std::pair<TraceId, Timestamp>, std::vector<Timestamp>> by_start;
  };

  const PairSet& PairMatches(ActivityId a, ActivityId b) const {
    auto [it, inserted] = pairs_.try_emplace({a, b});
    if (inserted) {
      it->second.matches = engine_.Detect({a, b}, policy_);
      for (const SaseMatch& m : it->second.matches) {
        it->second.by_start[{m.trace, m.timestamps[0]}].push_back(
            m.timestamps[1]);
      }
    }
    return it->second;
  }

  baseline::SaseEngine engine_;
  Policy policy_;
  mutable std::map<std::pair<ActivityId, ActivityId>, PairSet> pairs_;
};

std::vector<std::vector<ActivityId>> RandomPatterns(size_t count,
                                                    size_t num_activities,
                                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<ActivityId>> patterns;
  patterns.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t len = static_cast<size_t>(rng.NextInRange(2, 4));
    std::vector<ActivityId> p(len);
    for (auto& a : p) {
      a = static_cast<ActivityId>(rng.NextBounded(num_activities));
    }
    patterns.push_back(std::move(p));
  }
  return patterns;
}

std::vector<PatternMatch> Normalized(std::vector<PatternMatch> matches) {
  std::sort(matches.begin(), matches.end(),
            [](const PatternMatch& a, const PatternMatch& b) {
              return std::tie(a.trace, a.timestamps) <
                     std::tie(b.trace, b.timestamps);
            });
  return matches;
}

std::string Describe(const std::vector<ActivityId>& pattern, uint64_t seed,
                     const char* stage) {
  std::string out = "seed=" + std::to_string(seed) + " stage=" + stage +
                    " pattern=<";
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(pattern[i]);
  }
  out += "> (replay: SEQDET_DIFF_SEED=" + std::to_string(seed) + ")";
  return out;
}

/// Morsel thresholds small enough that the differential log's posting
/// lists split into many morsels, so the parallel axis exercises real
/// partitioning rather than falling back to the serial kernel.
query::ParallelExecutionOptions TinyMorsels() {
  query::ParallelExecutionOptions par;
  par.morsel_target_postings = 16;
  par.min_parallel_join_input = 1;
  par.min_parallel_candidates = 1;
  return par;
}

/// Runs every pattern through the index and the oracle, requiring identical
/// match multisets. `stage` labels the index state in failure messages.
/// Every pattern also runs through the morsel-driven engine at two pool
/// widths (the parallel-execution axis); those results must be
/// *byte-identical* to the serial engine's — same matches, same order —
/// not merely equal as multisets.
void ExpectAgreement(const Fixture& f, const Oracle& oracle,
                     const std::vector<std::vector<ActivityId>>& patterns,
                     uint64_t seed, const char* stage,
                     const DetectionConstraints& constraints = {}) {
  QueryProcessor qp(f.index.get());
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  QueryProcessor qp2(f.index.get(), &pool2, TinyMorsels());
  QueryProcessor qp4(f.index.get(), &pool4, TinyMorsels());
  for (const auto& p : patterns) {
    auto got = qp.Detect(Pattern(p), constraints);
    ASSERT_TRUE(got.ok()) << got.status() << " " << Describe(p, seed, stage);
    auto par2 = qp2.Detect(Pattern(p), constraints);
    auto par4 = qp4.Detect(Pattern(p), constraints);
    ASSERT_TRUE(par2.ok()) << par2.status() << " " << Describe(p, seed, stage);
    ASSERT_TRUE(par4.ok()) << par4.status() << " " << Describe(p, seed, stage);
    ASSERT_EQ(*par2, *got)
        << "2-thread diverged from serial " << Describe(p, seed, stage);
    ASSERT_EQ(*par4, *got)
        << "4-thread diverged from serial " << Describe(p, seed, stage);
    ASSERT_EQ(Normalized(*got), Normalized(oracle.Detect(p, constraints)))
        << Describe(p, seed, stage);
  }
}

// ---------------------------------------------------------------------------
// v2 (blocked) format: pre-fold, post-fold, warm cache
// ---------------------------------------------------------------------------

class DifferentialTest : public ::testing::TestWithParam<Policy> {};

TEST_P(DifferentialTest, BlockedFormatPreAndPostFold) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, GetParam(), index::kPostingFormatBlocked);
  Oracle oracle(&log, GetParam());
  auto patterns =
      RandomPatterns(PatternsPerConfig(), f.index->dictionary().size(), seed);

  ExpectAgreement(f, oracle, patterns, seed, "pre-fold");
  ASSERT_TRUE(f.index->FoldPostings().ok());
  ExpectAgreement(f, oracle, patterns, seed, "post-fold");
  // Third pass hits the now-populated read cache.
  ExpectAgreement(f, oracle, patterns, seed, "warm-cache");
}

TEST_P(DifferentialTest, FlatFormatFoldAndUpgrade) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, GetParam(), index::kPostingFormatFlat);
  Oracle oracle(&log, GetParam());
  auto patterns =
      RandomPatterns(PatternsPerConfig(), f.index->dictionary().size(), seed);

  ASSERT_EQ(f.index->posting_format(), index::kPostingFormatFlat);
  ExpectAgreement(f, oracle, patterns, seed, "v1-pre-fold");
  // Incremental fold is format-preserving: still v1, values now sorted.
  ASSERT_TRUE(f.index->FoldPostingsIncremental().ok());
  ASSERT_EQ(f.index->posting_format(), index::kPostingFormatFlat);
  ExpectAgreement(f, oracle, patterns, seed, "v1-post-fold");
  // FoldPostings on a v1 index is the upgrade to v2 blocks.
  ASSERT_TRUE(f.index->FoldPostings().ok());
  ASSERT_EQ(f.index->posting_format(), index::kPostingFormatBlocked);
  ExpectAgreement(f, oracle, patterns, seed, "post-upgrade");
}

TEST_P(DifferentialTest, MidFoldStateAgrees) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, GetParam(), index::kPostingFormatBlocked);
  Oracle oracle(&log, GetParam());
  auto patterns =
      RandomPatterns(PatternsPerConfig(), f.index->dictionary().size(), seed);

  // Abort the fold partway: some keys folded, the rest still fragmented —
  // the state a query sees while the maintenance service is mid-cycle (or
  // after its shutdown aborted a pass).
  FoldStats stats;
  Status aborted = f.index->FoldPostingsIncremental(
      &stats, [](const FoldStats& fs) {
        return fs.keys_folded >= 40 ? Status::Aborted("mid-fold stop")
                                    : Status::OK();
      });
  ASSERT_TRUE(aborted.IsAborted()) << aborted;
  ASSERT_GE(stats.keys_folded, 40u);
  ExpectAgreement(f, oracle, patterns, seed, "mid-fold");

  ASSERT_TRUE(f.index->FoldPostingsIncremental().ok());
  ExpectAgreement(f, oracle, patterns, seed, "resumed-fold");
}

INSTANTIATE_TEST_SUITE_P(Policies, DifferentialTest,
                         ::testing::Values(Policy::kSkipTillNextMatch,
                                           Policy::kStrictContiguity),
                         [](const auto& info) {
                           return info.param == Policy::kSkipTillNextMatch
                                      ? "Stnm"
                                      : "Sc";
                         });

// ---------------------------------------------------------------------------
// Cache-disabled vs cache-enabled
// ---------------------------------------------------------------------------

TEST(DifferentialCacheTest, ColdWarmAndUncachedAgree) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture cached(log, Policy::kSkipTillNextMatch,
                 index::kPostingFormatBlocked);
  Fixture uncached(log, Policy::kSkipTillNextMatch,
                   index::kPostingFormatBlocked, /*cache_bytes=*/0);
  Oracle oracle(&log, Policy::kSkipTillNextMatch);
  auto patterns = RandomPatterns(PatternsPerConfig(),
                                 cached.index->dictionary().size(), seed);

  ExpectAgreement(cached, oracle, patterns, seed, "cache-cold");
  ExpectAgreement(cached, oracle, patterns, seed, "cache-warm");
  EXPECT_GT(cached.index->cache_stats().hits, 0u);
  ExpectAgreement(uncached, oracle, patterns, seed, "cache-off");
  EXPECT_EQ(uncached.index->cache_stats().hits, 0u);
}

// ---------------------------------------------------------------------------
// Constraints and the batch API
// ---------------------------------------------------------------------------

TEST(DifferentialConstraintTest, GapAndSpanConstraintsAgree) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, Policy::kSkipTillNextMatch, index::kPostingFormatBlocked);
  Oracle oracle(&log, Policy::kSkipTillNextMatch);
  auto patterns = RandomPatterns(PatternsPerConfig(),
                                 f.index->dictionary().size(), seed);

  Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
  QueryProcessor qp(f.index.get());
  for (const auto& p : patterns) {
    DetectionConstraints constraints;
    if (rng.NextBool()) constraints.max_gap = rng.NextInRange(1, 20);
    if (rng.NextBool()) constraints.max_span = rng.NextInRange(1, 60);
    auto got = qp.Detect(Pattern(p), constraints);
    ASSERT_TRUE(got.ok())
        << got.status() << " " << Describe(p, seed, "constraints");
    ASSERT_EQ(Normalized(*got),
              Normalized(oracle.Detect(p, constraints)))
        << Describe(p, seed, "constraints");
  }
}

TEST(DifferentialBatchTest, DetectBatchAgreesWithOracle) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, Policy::kSkipTillNextMatch, index::kPostingFormatBlocked);
  Oracle oracle(&log, Policy::kSkipTillNextMatch);
  auto raw = RandomPatterns(PatternsPerConfig(),
                            f.index->dictionary().size(), seed);
  std::vector<Pattern> patterns;
  patterns.reserve(raw.size());
  for (const auto& p : raw) patterns.emplace_back(p);

  ThreadPool pool(4);
  auto results = QueryProcessor(f.index.get()).DetectBatch(patterns, &pool);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    ASSERT_EQ(Normalized((*results)[i]), Normalized(oracle.Detect(raw[i])))
        << Describe(raw[i], seed, "batch");
  }
}

// ---------------------------------------------------------------------------
// Parallel execution: error/deadline behavior must match serial exactly
// ---------------------------------------------------------------------------

TEST(DifferentialParallelTest, DeadlineBehaviorMatchesSerial) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, Policy::kSkipTillNextMatch, index::kPostingFormatBlocked);
  QueryProcessor serial(f.index.get());
  ThreadPool pool(4);
  QueryProcessor parallel(f.index.get(), &pool, TinyMorsels());
  auto patterns =
      RandomPatterns(100, f.index->dictionary().size(), seed ^ 0xD1D);
  for (const auto& p : patterns) {
    // Already-expired budget: both engines must abort — the morsel path
    // maps any worker's Aborted to the same status the serial join
    // returns — and a never-expiring one must not change the matches.
    DetectionConstraints expired;
    expired.deadline = Deadline::After(0);
    auto s = serial.Detect(Pattern(p), expired);
    auto q = parallel.Detect(Pattern(p), expired);
    ASSERT_TRUE(s.status().IsAborted()) << Describe(p, seed, "deadline");
    ASSERT_TRUE(q.status().IsAborted()) << Describe(p, seed, "deadline");

    DetectionConstraints generous;
    generous.deadline = Deadline::After(60000);
    auto s2 = serial.Detect(Pattern(p), generous);
    auto q2 = parallel.Detect(Pattern(p), generous);
    ASSERT_TRUE(s2.ok()) << s2.status();
    ASSERT_TRUE(q2.ok()) << q2.status();
    ASSERT_EQ(*q2, *s2) << Describe(p, seed, "deadline-generous");
  }
}

// ---------------------------------------------------------------------------
// HTTP mode: the serving layer versus in-process Detect
// ---------------------------------------------------------------------------

/// The textual query for a pattern, as a /detect target. The response is
/// compared byte-for-byte against DetectResponseJson over the in-process
/// Detect result — the serializer is shared, so any difference implicates
/// the HTTP layer (parsing, encoding, concurrency), not formatting drift.
std::string DetectTarget(const SequenceIndex& index,
                         const std::vector<ActivityId>& pattern) {
  std::string q;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i > 0) q += " -> ";
    q += index.dictionary().Name(pattern[i]);
  }
  return "/detect?q=" + server::HttpClient::UrlEncode(q) + "&limit=1000000";
}

TEST(DifferentialHttpTest, HttpDetectMatchesInProcessByteForByte) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, Policy::kSkipTillNextMatch, index::kPostingFormatBlocked);

  server::QueryService service(f.index.get());
  server::HttpServer http;
  service.RegisterRoutes(&http);
  ASSERT_TRUE(http.Start(0).ok());
  server::HttpClient client(http.port());
  QueryProcessor qp(f.index.get());

  auto patterns =
      RandomPatterns(PatternsPerConfig(), f.index->dictionary().size(), seed);
  for (const auto& p : patterns) {
    auto response = client.Get(DetectTarget(*f.index, p));
    ASSERT_TRUE(response.ok())
        << response.status() << " " << Describe(p, seed, "http");
    ASSERT_EQ(response->status, 200)
        << response->body << " " << Describe(p, seed, "http");
    auto matches = qp.Detect(Pattern(p));
    ASSERT_TRUE(matches.ok())
        << matches.status() << " " << Describe(p, seed, "http");
    ASSERT_EQ(response->body,
              server::DetectResponseJson(*matches, 1000000))
        << Describe(p, seed, "http");
  }
  http.Stop();
}

TEST(DifferentialHttpTest, HttpDetectAgreesUnderConcurrentAutoFold) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);

  // The log is frozen (no writer), so fold invariance is exactly what this
  // certifies: a fold pass stretched across the whole query phase by an
  // aggressive-threshold + rate-limited maintenance service must never
  // change what /detect returns. Small blocks maximize the per-key folds
  // the queries overlap with.
  storage::DbOptions db_options;
  db_options.table.in_memory = true;
  db_options.table.use_wal = false;
  auto db = std::move(storage::Database::Open("", db_options)).value();
  IndexOptions options;
  options.policy = Policy::kSkipTillNextMatch;
  options.num_threads = 1;
  options.posting_format = index::kPostingFormatBlocked;
  options.cache_bytes = 1u << 20;
  options.posting_block_bytes = 96;
  options.maintenance.auto_fold = true;
  options.maintenance.check_interval_ms = 5;
  options.maintenance.min_pending_bytes = 1;
  options.maintenance.min_pending_ops = 1;
  options.maintenance.rate_limit_bytes_per_sec = 256u << 10;
  auto index = std::move(SequenceIndex::Open(db.get(), options)).value();
  ASSERT_NE(index->maintenance(), nullptr);
  ASSERT_TRUE(index->Update(log).ok());

  server::QueryService service(index.get());
  server::HttpServer http;
  service.RegisterRoutes(&http);
  ASSERT_TRUE(http.Start(0).ok());
  server::HttpClient client(http.port());
  QueryProcessor qp(index.get());

  auto patterns =
      RandomPatterns(PatternsPerConfig(), index->dictionary().size(), seed);
  bool fold_observed = false;
  for (const auto& p : patterns) {
    fold_observed |= index->maintenance_stats().fold_in_progress;
    std::string target = DetectTarget(*index, p);
    // A fold committing between the HTTP call and the in-process call may
    // permute equal-result orderings; one retry re-reads both sides within
    // a (much shorter) window. A real disagreement fails both attempts.
    std::string got, want;
    for (int attempt = 0; attempt < 2; ++attempt) {
      auto response = client.Get(target);
      ASSERT_TRUE(response.ok())
          << response.status() << " " << Describe(p, seed, "http-fold");
      ASSERT_EQ(response->status, 200)
          << response->body << " " << Describe(p, seed, "http-fold");
      auto matches = qp.Detect(Pattern(p));
      ASSERT_TRUE(matches.ok())
          << matches.status() << " " << Describe(p, seed, "http-fold");
      got = response->body;
      want = server::DetectResponseJson(*matches, 1000000);
      if (got == want) break;
    }
    ASSERT_EQ(got, want) << Describe(p, seed, "http-fold");
  }
  http.Stop();

  index::MaintenanceStats m = index->maintenance_stats();
  EXPECT_TRUE(fold_observed || m.folds_run > 0)
      << "maintenance never overlapped the query phase — thresholds or "
         "rate limit broken?";
  EXPECT_EQ(m.errors, 0u) << m.last_error;
}

// ---------------------------------------------------------------------------
// Extended patterns: disjunction, Kleene+, negation, time windows
//
// The oracle here is SaseEngine::DetectExtended — the normative raw-log
// implementation of the extended composition semantics. It shares nothing
// with the index path (no postings, no codecs, no caches, no morsels), so a
// disagreement implicates the index-side compiler in
// QueryProcessor::DetectExtended.
// ---------------------------------------------------------------------------

using query::ExtendedPattern;
using query::PatternElement;

/// Seeded sampler over the full extended grammar. Every pattern is valid by
/// construction (>= 1 positive, no negated Kleene, canonical alternatives).
std::vector<ExtendedPattern> RandomExtendedPatterns(size_t count,
                                                    size_t num_activities,
                                                    uint64_t seed) {
  Rng rng(seed ^ 0xE47E4DEDull);
  std::vector<ExtendedPattern> patterns;
  patterns.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ExtendedPattern pattern;
    const size_t len = 1 + rng.NextBounded(4);
    for (size_t e = 0; e < len; ++e) {
      PatternElement element;
      const size_t alts = rng.NextBool(0.3) ? 1 + rng.NextBounded(3) : 1;
      for (size_t a = 0; a < alts; ++a) {
        element.alternatives.push_back(
            static_cast<ActivityId>(rng.NextBounded(num_activities)));
      }
      std::sort(element.alternatives.begin(), element.alternatives.end());
      element.alternatives.erase(
          std::unique(element.alternatives.begin(),
                      element.alternatives.end()),
          element.alternatives.end());
      element.negated = rng.NextBool(0.2);
      element.kleene = !element.negated && rng.NextBool(0.25);
      pattern.elements.push_back(std::move(element));
    }
    bool any_positive = false;
    for (const auto& e : pattern.elements) any_positive |= !e.negated;
    if (!any_positive) {
      pattern.elements[rng.NextBounded(pattern.elements.size())].negated =
          false;
    }
    if (rng.NextBool(0.3)) pattern.max_span = rng.NextInRange(1, 80);
    if (rng.NextBool(0.3)) pattern.max_gap = rng.NextInRange(1, 25);
    EXPECT_TRUE(pattern.Validate().ok());
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

std::string DescribeExt(const ExtendedPattern& pattern,
                        const eventlog::ActivityDictionary& dictionary,
                        uint64_t seed, const char* stage) {
  return "seed=" + std::to_string(seed) + " stage=" + stage + " query=\"" +
         pattern.ToString(dictionary) + "\" (replay: SEQDET_DIFF_SEED=" +
         std::to_string(seed) + ")";
}

/// Index-side extended detection versus the SASE extended oracle, plus the
/// parallel-execution axis: the morsel-driven engine at two pool widths
/// must be byte-identical to the serial extended path.
void ExpectExtendedAgreement(const Fixture& f, const EventLog& log,
                             Policy policy,
                             const std::vector<ExtendedPattern>& patterns,
                             uint64_t seed, const char* stage,
                             baseline::SasePairCache* cache) {
  baseline::SaseEngine engine(&log);
  QueryProcessor qp(f.index.get());
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  QueryProcessor qp2(f.index.get(), &pool2, TinyMorsels());
  QueryProcessor qp4(f.index.get(), &pool4, TinyMorsels());
  const auto& dict = f.index->dictionary();
  for (const ExtendedPattern& p : patterns) {
    auto got = qp.DetectExtended(p);
    ASSERT_TRUE(got.ok()) << got.status() << " "
                          << DescribeExt(p, dict, seed, stage);
    auto par2 = qp2.DetectExtended(p);
    auto par4 = qp4.DetectExtended(p);
    ASSERT_TRUE(par2.ok()) << par2.status() << " "
                           << DescribeExt(p, dict, seed, stage);
    ASSERT_TRUE(par4.ok()) << par4.status() << " "
                           << DescribeExt(p, dict, seed, stage);
    ASSERT_EQ(*par2, *got) << "2-thread diverged from serial "
                           << DescribeExt(p, dict, seed, stage);
    ASSERT_EQ(*par4, *got) << "4-thread diverged from serial "
                           << DescribeExt(p, dict, seed, stage);
    auto expected = engine.DetectExtended(p, policy, cache);
    ASSERT_TRUE(expected.ok()) << expected.status() << " "
                               << DescribeExt(p, dict, seed, stage);
    std::vector<PatternMatch> oracle_matches;
    oracle_matches.reserve(expected->size());
    for (const SaseMatch& m : *expected) {
      oracle_matches.push_back(PatternMatch{m.trace, m.timestamps});
    }
    ASSERT_EQ(Normalized(*got), Normalized(std::move(oracle_matches)))
        << DescribeExt(p, dict, seed, stage);
  }
}

class ExtendedDifferentialTest : public ::testing::TestWithParam<Policy> {};

TEST_P(ExtendedDifferentialTest, ExtendedBlockedPreAndPostFold) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, GetParam(), index::kPostingFormatBlocked);
  auto patterns = RandomExtendedPatterns(PatternsPerConfig(),
                                         f.index->dictionary().size(), seed);

  baseline::SasePairCache cache;
  ExpectExtendedAgreement(f, log, GetParam(), patterns, seed, "pre-fold",
                          &cache);
  ASSERT_TRUE(f.index->FoldPostings().ok());
  ExpectExtendedAgreement(f, log, GetParam(), patterns, seed, "post-fold",
                          &cache);
  // Third pass hits the now-populated read cache.
  ExpectExtendedAgreement(f, log, GetParam(), patterns, seed, "warm-cache",
                          &cache);
}

TEST_P(ExtendedDifferentialTest, ExtendedFlatFoldAndUpgrade) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, GetParam(), index::kPostingFormatFlat);
  auto patterns = RandomExtendedPatterns(PatternsPerConfig(),
                                         f.index->dictionary().size(), seed);

  baseline::SasePairCache cache;
  ASSERT_EQ(f.index->posting_format(), index::kPostingFormatFlat);
  ExpectExtendedAgreement(f, log, GetParam(), patterns, seed, "v1-pre-fold",
                          &cache);
  ASSERT_TRUE(f.index->FoldPostingsIncremental().ok());
  ASSERT_EQ(f.index->posting_format(), index::kPostingFormatFlat);
  ExpectExtendedAgreement(f, log, GetParam(), patterns, seed, "v1-post-fold",
                          &cache);
  ASSERT_TRUE(f.index->FoldPostings().ok());
  ASSERT_EQ(f.index->posting_format(), index::kPostingFormatBlocked);
  ExpectExtendedAgreement(f, log, GetParam(), patterns, seed, "post-upgrade",
                          &cache);
}

TEST_P(ExtendedDifferentialTest, ExtendedMidFoldStateAgrees) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, GetParam(), index::kPostingFormatBlocked);
  auto patterns = RandomExtendedPatterns(PatternsPerConfig(),
                                         f.index->dictionary().size(), seed);

  baseline::SasePairCache cache;
  FoldStats stats;
  Status aborted = f.index->FoldPostingsIncremental(
      &stats, [](const FoldStats& fs) {
        return fs.keys_folded >= 40 ? Status::Aborted("mid-fold stop")
                                    : Status::OK();
      });
  ASSERT_TRUE(aborted.IsAborted()) << aborted;
  ExpectExtendedAgreement(f, log, GetParam(), patterns, seed, "mid-fold",
                          &cache);
  ASSERT_TRUE(f.index->FoldPostingsIncremental().ok());
  ExpectExtendedAgreement(f, log, GetParam(), patterns, seed, "resumed-fold",
                          &cache);
}

INSTANTIATE_TEST_SUITE_P(Policies, ExtendedDifferentialTest,
                         ::testing::Values(Policy::kSkipTillNextMatch,
                                           Policy::kStrictContiguity),
                         [](const auto& info) {
                           return info.param == Policy::kSkipTillNextMatch
                                      ? "Stnm"
                                      : "Sc";
                         });

/// Compliance templates run through the same differential gate: every
/// template expansion over every activity pair, against the oracle.
TEST(ExtendedDifferentialTest, ExtendedComplianceTemplatesAgree) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, Policy::kSkipTillNextMatch, index::kPostingFormatBlocked);
  const ActivityId n =
      static_cast<ActivityId>(f.index->dictionary().size());

  std::vector<ExtendedPattern> patterns;
  for (ActivityId a = 0; a < n; ++a) {
    patterns.push_back(
        query::CompliancePattern(query::ComplianceRule::kAbsence, a));
    for (ActivityId b = 0; b < n; ++b) {
      patterns.push_back(
          query::CompliancePattern(query::ComplianceRule::kResponse, a, b));
      patterns.push_back(
          query::CompliancePattern(query::ComplianceRule::kPrecedence, a, b));
    }
  }
  baseline::SasePairCache cache;
  ExpectExtendedAgreement(f, log, Policy::kSkipTillNextMatch, patterns, seed,
                          "compliance", &cache);
}

/// HTTP axis for the extended grammar: the query string is the canonical
/// ToString of each generated pattern, and the response body must be
/// byte-identical to DetectResponseJson over the in-process
/// DetectExtended result.
TEST(ExtendedDifferentialTest, ExtendedHttpMatchesInProcessByteForByte) {
  const uint64_t seed = DiffSeed();
  EventLog log = DiffLog(seed);
  Fixture f(log, Policy::kSkipTillNextMatch, index::kPostingFormatBlocked);

  server::QueryService service(f.index.get());
  server::HttpServer http;
  service.RegisterRoutes(&http);
  ASSERT_TRUE(http.Start(0).ok());
  server::HttpClient client(http.port());
  QueryProcessor qp(f.index.get());
  const auto& dict = f.index->dictionary();

  auto patterns = RandomExtendedPatterns(PatternsPerConfig(),
                                         dict.size(), seed);
  for (const ExtendedPattern& p : patterns) {
    std::string target = "/detect?q=" +
                         server::HttpClient::UrlEncode(p.ToString(dict)) +
                         "&limit=1000000";
    auto response = client.Get(target);
    ASSERT_TRUE(response.ok()) << response.status() << " "
                               << DescribeExt(p, dict, seed, "http");
    ASSERT_EQ(response->status, 200)
        << response->body << " " << DescribeExt(p, dict, seed, "http");
    auto matches = qp.DetectExtended(p);
    ASSERT_TRUE(matches.ok()) << matches.status() << " "
                              << DescribeExt(p, dict, seed, "http");
    ASSERT_EQ(response->body, server::DetectResponseJson(*matches, 1000000))
        << DescribeExt(p, dict, seed, "http");
  }
  http.Stop();
}

}  // namespace
}  // namespace seqdet
