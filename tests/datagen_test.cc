#include <set>

#include "datagen/dataset_catalog.h"
#include "datagen/generators.h"
#include "datagen/pattern_sampler.h"
#include "datagen/process_tree.h"
#include "gtest/gtest.h"
#include "log/log_statistics.h"

namespace seqdet::datagen {
namespace {

using eventlog::EventLog;
using eventlog::LogStatistics;

// ---------------------------------------------------------------------------
// ProcessTree
// ---------------------------------------------------------------------------

TEST(ProcessTreeTest, UsesExactAlphabet) {
  Rng rng(1);
  ProcessTree::Config config;
  config.num_activities = 12;
  ProcessTree tree = ProcessTree::Random(config, &rng);
  EXPECT_EQ(tree.NumActivities(), 12u);
  // Across many simulations, every activity must be reachable... not
  // guaranteed under XOR splits for a single run, but the union over many
  // runs should cover most of the alphabet and never exceed it.
  std::set<eventlog::ActivityId> seen;
  for (int i = 0; i < 300; ++i) {
    for (auto a : tree.Simulate(&rng)) {
      EXPECT_LT(a, 12u);
      seen.insert(a);
    }
  }
  EXPECT_GE(seen.size(), 6u);
}

TEST(ProcessTreeTest, SimulationsAreNonEmptyAndBounded) {
  Rng rng(2);
  ProcessTree::Config config;
  config.num_activities = 30;
  config.max_depth = 6;
  ProcessTree tree = ProcessTree::Random(config, &rng);
  for (int i = 0; i < 100; ++i) {
    auto trace = tree.Simulate(&rng);
    EXPECT_FALSE(trace.empty());
    EXPECT_LT(trace.size(), 10000u);  // loop cap keeps traces finite
  }
}

TEST(ProcessTreeTest, DeterministicGivenSeed) {
  ProcessTree::Config config;
  config.num_activities = 10;
  Rng rng1(7), rng2(7);
  ProcessTree t1 = ProcessTree::Random(config, &rng1);
  ProcessTree t2 = ProcessTree::Random(config, &rng2);
  EXPECT_EQ(t1.Simulate(&rng1), t2.Simulate(&rng2));
}

TEST(ProcessTreeTest, SingleActivity) {
  Rng rng(3);
  ProcessTree::Config config;
  config.num_activities = 1;
  ProcessTree tree = ProcessTree::Random(config, &rng);
  auto trace = tree.Simulate(&rng);
  EXPECT_FALSE(trace.empty());
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(ProcessLogGeneratorTest, HonorsConfig) {
  ProcessLogConfig config;
  config.num_traces = 50;
  config.num_activities = 20;
  config.seed = 11;
  EventLog log = GenerateProcessLog(config);
  EXPECT_EQ(log.num_traces(), 50u);
  EXPECT_LE(log.num_activities(), 20u);
  for (const auto& t : log.traces()) {
    EXPECT_TRUE(t.IsSorted());
    EXPECT_FALSE(t.empty());
  }
}

TEST(ProcessLogGeneratorTest, Deterministic) {
  ProcessLogConfig config;
  config.num_traces = 10;
  config.seed = 5;
  EventLog a = GenerateProcessLog(config);
  EventLog b = GenerateProcessLog(config);
  ASSERT_EQ(a.num_events(), b.num_events());
  for (size_t i = 0; i < a.num_traces(); ++i) {
    EXPECT_EQ(a.traces()[i].events, b.traces()[i].events);
  }
}

TEST(RandomLogGeneratorTest, HonorsConfig) {
  RandomLogConfig config;
  config.num_traces = 40;
  config.max_events_per_trace = 25;
  config.num_activities = 10;
  config.seed = 3;
  EventLog log = GenerateRandomLog(config);
  EXPECT_EQ(log.num_traces(), 40u);
  for (const auto& t : log.traces()) {
    EXPECT_GE(t.size(), 1u);
    EXPECT_LE(t.size(), 25u);
    EXPECT_TRUE(t.IsSorted());
  }
  EXPECT_LE(log.num_activities(), 10u);
}

TEST(RandomLogGeneratorTest, SkewProducesImbalance) {
  RandomLogConfig config;
  config.num_traces = 200;
  config.max_events_per_trace = 50;
  config.num_activities = 20;
  config.activity_skew = 1.2;
  EventLog log = GenerateRandomLog(config);
  std::vector<size_t> counts(20, 0);
  for (const auto& t : log.traces()) {
    for (const auto& e : t.events) counts[e.activity]++;
  }
  auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*max_it, *min_it * 3);
}

TEST(BpiSimulatorTest, MatchesPublishedProfiles) {
  struct Case {
    BpiProfile profile;
    double mean_tolerance;
  };
  for (const auto& [profile, tol] :
       {Case{Bpi2013Profile(), 2.5}, Case{Bpi2020Profile(), 1.5}}) {
    EventLog log = GenerateBpiLikeLog(profile);
    auto stats = LogStatistics::Compute(log);
    EXPECT_EQ(stats.num_traces, profile.num_traces) << profile.name;
    EXPECT_LE(stats.num_activities, profile.num_activities) << profile.name;
    EXPECT_GE(stats.min_events_per_trace, profile.min_events_per_trace)
        << profile.name;
    EXPECT_LE(stats.max_events_per_trace, profile.max_events_per_trace)
        << profile.name;
    EXPECT_NEAR(stats.mean_events_per_trace, profile.mean_events_per_trace,
                tol)
        << profile.name;
  }
}

TEST(BpiSimulatorTest, ScaledTraces) {
  EXPECT_EQ(ScaledTraces(1000, 1.0), 1000u);
  EXPECT_EQ(ScaledTraces(1000, 0.1), 100u);
  EXPECT_EQ(ScaledTraces(3, 0.001), 1u);  // never zero
}

// ---------------------------------------------------------------------------
// Dataset catalog
// ---------------------------------------------------------------------------

TEST(DatasetCatalogTest, AllNamesLoadAtSmallScale) {
  for (const std::string& name : DatasetNames()) {
    auto log = LoadDataset(name, 0.02);
    ASSERT_TRUE(log.ok()) << name << ": " << log.status();
    EXPECT_GT(log->num_traces(), 0u) << name;
    EXPECT_GT(log->num_events(), 0u) << name;
  }
}

TEST(DatasetCatalogTest, UnknownNameRejected) {
  EXPECT_TRUE(LoadDataset("nope", 1.0).status().IsNotFound());
}

TEST(DatasetCatalogTest, BadScaleRejected) {
  EXPECT_TRUE(LoadDataset("max_100", 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(LoadDataset("max_100", 1.5).status().IsInvalidArgument());
}

TEST(DatasetCatalogTest, Table4TraceCountsAtFullScale) {
  auto log = LoadDataset("max_100", 1.0);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->num_traces(), 100u);
  // 150 activities configured; XOR branches may leave a few unused.
  EXPECT_GT(log->num_activities(), 100u);
  EXPECT_LE(log->num_activities(), 150u);
}

TEST(DatasetCatalogTest, MinDatasetHasSmallAlphabet) {
  auto log = LoadDataset("min_10000", 0.01);
  ASSERT_TRUE(log.ok());
  EXPECT_LE(log->num_activities(), 15u);
}

TEST(DatasetCatalogTest, DeterministicAcrossCalls) {
  auto a = LoadDataset("med_5000", 0.01);
  auto b = LoadDataset("med_5000", 0.01);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_traces(), b->num_traces());
  for (size_t i = 0; i < a->num_traces(); ++i) {
    EXPECT_EQ(a->traces()[i].events, b->traces()[i].events);
  }
}

// ---------------------------------------------------------------------------
// PatternSampler
// ---------------------------------------------------------------------------

TEST(PatternSamplerTest, ContiguousPatternsOccurInLog) {
  RandomLogConfig config;
  config.num_traces = 30;
  config.max_events_per_trace = 40;
  config.num_activities = 8;
  EventLog log = GenerateRandomLog(config);
  PatternSampler sampler(&log, 77);
  for (int i = 0; i < 50; ++i) {
    auto pattern = sampler.SampleContiguous(4);
    ASSERT_EQ(pattern.size(), 4u);
    // Verify some trace contains the pattern contiguously.
    bool found = false;
    for (const auto& t : log.traces()) {
      for (size_t s = 0; !found && s + 4 <= t.size(); ++s) {
        bool ok = true;
        for (size_t j = 0; j < 4; ++j) {
          if (t.events[s + j].activity != pattern[j]) {
            ok = false;
            break;
          }
        }
        found = ok;
      }
      if (found) break;
    }
    EXPECT_TRUE(found) << "sample " << i;
  }
}

TEST(PatternSamplerTest, SubsequencePatternsOccurInLog) {
  RandomLogConfig config;
  config.num_traces = 30;
  config.max_events_per_trace = 40;
  config.num_activities = 8;
  EventLog log = GenerateRandomLog(config);
  PatternSampler sampler(&log, 78);
  for (int i = 0; i < 50; ++i) {
    auto pattern = sampler.SampleSubsequence(5);
    ASSERT_EQ(pattern.size(), 5u);
    bool found = false;
    for (const auto& t : log.traces()) {
      size_t pos = 0;
      for (const auto& e : t.events) {
        if (pos < 5 && e.activity == pattern[pos]) ++pos;
      }
      if (pos == 5) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "sample " << i;
  }
}

TEST(PatternSamplerTest, FallsBackWhenTracesTooShort) {
  EventLog log;
  log.Append(1, "A", 1);
  log.Append(1, "B", 2);
  log.SortAllTraces();
  PatternSampler sampler(&log, 79);
  auto pattern = sampler.SampleContiguous(10);  // longer than any trace
  EXPECT_EQ(pattern.size(), 10u);               // random fallback
}

TEST(PatternSamplerTest, BatchHelpers) {
  RandomLogConfig config;
  config.num_traces = 10;
  config.max_events_per_trace = 20;
  config.num_activities = 5;
  EventLog log = GenerateRandomLog(config);
  PatternSampler sampler(&log, 80);
  auto many = sampler.SampleManySubsequences(7, 3);
  EXPECT_EQ(many.size(), 7u);
  for (auto& p : many) EXPECT_EQ(p.size(), 3u);
  auto contiguous = sampler.SampleManyContiguous(4, 2);
  EXPECT_EQ(contiguous.size(), 4u);
}

}  // namespace
}  // namespace seqdet::datagen
