// Fault injection for the shard router: SIGKILLed workers, hung (tarpit)
// shards, circuit-breaker lifecycle, partial-result policy. The
// differential harness certifies the merged bytes when every shard is
// healthy; this file certifies the failure policy — a dead or silent
// worker costs a bounded slice of the request deadline and a diagnosable
// status, never a hung request or a stuck router thread.
//
// Worker processes are real processes (fork) so SIGKILL severs them the
// way an OOM kill or a crashed box would: no destructors, no FIN
// handshake from the server loop, the kernel just reclaims the sockets.
// Workers fork before the parent starts any threads (routers, in-process
// servers), so the children never inherit half a thread pool.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generators.h"
#include "gtest/gtest.h"
#include "index/sequence_index.h"
#include "index/trace_shard.h"
#include "log/event_log.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "server/shard_router.h"
#include "storage/database.h"

namespace seqdet {
namespace {

using eventlog::EventLog;
using index::IndexOptions;
using index::Policy;
using index::SequenceIndex;

EventLog FaultLog(uint64_t seed) {
  datagen::RandomLogConfig config;
  config.num_traces = 60;
  config.max_events_per_trace = 30;
  config.num_activities = 8;
  config.seed = seed;
  config.mean_gap = 5;
  return datagen::GenerateRandomLog(config);
}

std::vector<EventLog> PartitionLog(const EventLog& log, size_t num_shards) {
  std::vector<EventLog> parts(num_shards);
  for (auto& part : parts) {
    for (const auto& name : log.dictionary().names()) {
      part.dictionary().Intern(name);
    }
  }
  for (const auto& trace : log.traces()) {
    parts[index::ShardOfTrace(trace.id, num_shards)].AddTrace(trace);
  }
  return parts;
}

/// In-process worker: in-memory index + QueryService + HttpServer. The
/// breaker-recovery test stops and restarts the HttpServer on the same
/// port (SO_REUSEADDR on the listener makes that immediate).
struct Node {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<SequenceIndex> index;
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::HttpServer> http;

  explicit Node(const EventLog& log) {
    storage::DbOptions db_options;
    db_options.table.in_memory = true;
    db_options.table.use_wal = false;
    db = std::move(storage::Database::Open("", db_options)).value();
    IndexOptions options;
    options.policy = Policy::kSkipTillNextMatch;
    options.num_threads = 1;
    options.posting_block_bytes = 96;
    index = std::move(SequenceIndex::Open(db.get(), options)).value();
    auto stats = index->Update(log);
    EXPECT_TRUE(stats.ok()) << stats.status();
    service = std::make_unique<server::QueryService>(index.get());
    http = std::make_unique<server::HttpServer>();
    service->RegisterRoutes(http.get());
    EXPECT_TRUE(http->Start(0).ok());
  }
  ~Node() {
    if (http) http->Stop();
  }
};

/// A worker in its own process. The child builds its shard fixture,
/// reports the listening port through a pipe, and parks in pause() until
/// the parent kills it — SIGKILL is the only way it exits.
struct ForkedWorker {
  pid_t pid = -1;
  uint16_t port = 0;

  static ForkedWorker Spawn(const EventLog& part) {
    int fds[2];
    EXPECT_EQ(pipe(fds), 0);
    pid_t pid = fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      close(fds[0]);
      {
        Node node(part);
        uint16_t p = node.http->port();
        if (write(fds[1], &p, sizeof(p)) != sizeof(p)) _exit(2);
        close(fds[1]);
        for (;;) pause();
      }
      _exit(0);  // not reached
    }
    close(fds[1]);
    ForkedWorker worker;
    worker.pid = pid;
    EXPECT_EQ(read(fds[0], &worker.port, sizeof(worker.port)),
              static_cast<ssize_t>(sizeof(worker.port)));
    close(fds[0]);
    return worker;
  }

  void Kill() {
    if (pid > 0) {
      kill(pid, SIGKILL);
      int wstatus = 0;
      waitpid(pid, &wstatus, 0);
      pid = -1;
    }
  }
  ~ForkedWorker() { Kill(); }
};

/// A shard-shaped black hole: listening socket whose backlog accepts the
/// TCP handshake but whose owner never reads or answers. Connects and
/// writes succeed; reads hang until the client's io timeout. This is the
/// "worker thread wedged / network silently dropping" shape a SIGKILL
/// cannot produce (a dead process RSTs immediately).
struct Tarpit {
  int fd = -1;
  uint16_t port = 0;

  Tarpit() {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(listen(fd, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port = ntohs(addr.sin_port);
  }
  ~Tarpit() {
    if (fd >= 0) close(fd);
  }
};

/// A loopback port with nothing behind it (bound, inspected, closed):
/// connects fail fast with ECONNREFUSED.
uint16_t DeadPort() {
  Tarpit probe;
  uint16_t port = probe.port;
  close(probe.fd);
  probe.fd = -1;
  return port;
}

std::unique_ptr<server::ShardRouter> MakeRouter(
    server::RouterOptions options, server::HttpServer* http) {
  auto router = std::make_unique<server::ShardRouter>(options);
  router->RegisterRoutes(http);
  EXPECT_TRUE(http->Start(0).ok());
  return router;
}

struct TimedResponse {
  int status = 0;
  std::string body;
  std::map<std::string, std::string> headers;
  int64_t elapsed_ms = 0;
};

TimedResponse TimedGet(uint16_t port, const std::string& target) {
  server::HttpClient client(port);
  auto start = std::chrono::steady_clock::now();
  auto response = client.Get(target);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_TRUE(response.ok()) << target << ": " << response.status();
  if (!response.ok()) return {0, "", {}, elapsed};
  return {response->status, response->body, response->headers, elapsed};
}

uint64_t TotalHedges(const server::RouterStatsSnapshot& stats) {
  uint64_t n = 0;
  for (const auto& shard : stats.shards) n += shard.hedges;
  return n;
}

constexpr const char* kQuery = "/detect?q=act_0%20-%3E%20act_1&limit=100";

// A SIGKILLed worker mid-scatter: the request resolves within its
// deadline (the severed connection RSTs, the router triages), and every
// request after the kill fails fast with a 503 naming the dead shard —
// never a hang.
TEST(RouterFaultTest, SigkilledWorkerNeverHangsRequests) {
  EventLog log = FaultLog(77);
  auto parts = PartitionLog(log, 2);
  // Fork both workers before any parent thread exists.
  ForkedWorker a = ForkedWorker::Spawn(parts[0]);
  ForkedWorker b = ForkedWorker::Spawn(parts[1]);

  server::RouterOptions options;
  options.shards = {{"127.0.0.1", a.port}, {"127.0.0.1", b.port}};
  options.default_deadline_ms = 1500;
  options.hedge_after_ms = 0;
  server::HttpServer router_http;
  auto router = MakeRouter(options, &router_http);

  // Healthy warm-up: both shards answer.
  auto warm = TimedGet(router_http.port(), kQuery);
  ASSERT_EQ(warm.status, 200) << warm.body;

  // Kill worker A while a request is in flight. Whichever side of the
  // race the kill lands on, the request must resolve as a definite
  // answer (200 before the kill bites, 503/504 after) within budget.
  std::thread in_flight([&] {
    auto r = TimedGet(router_http.port(), kQuery + std::string("&deadline_ms=1500"));
    EXPECT_TRUE(r.status == 200 || r.status == 503 || r.status == 504)
        << r.status << " " << r.body;
    EXPECT_LT(r.elapsed_ms, 4000) << "request outlived its deadline";
  });
  a.Kill();
  in_flight.join();

  // Steady state after the kill: fast, diagnosable failure.
  auto dead = TimedGet(router_http.port(),
                       kQuery + std::string("&deadline_ms=700"));
  EXPECT_TRUE(dead.status == 503 || dead.status == 504) << dead.body;
  EXPECT_NE(dead.body.find("failed_shards"), std::string::npos) << dead.body;
  EXPECT_LT(dead.elapsed_ms, 2500) << "failure was not fast";

  router_http.Stop();
  b.Kill();
}

// A hung shard (tarpit): the scatter leg times out against the request
// budget instead of hanging, and the hedged retry fires while the
// primary is stuck.
TEST(RouterFaultTest, HungShardTimesOutAndHedges) {
  EventLog log = FaultLog(78);
  auto parts = PartitionLog(log, 2);
  Node live(parts[0]);
  Tarpit tarpit;

  server::RouterOptions options;
  options.shards = {{"127.0.0.1", live.http->port()},
                    {"127.0.0.1", tarpit.port}};
  options.default_deadline_ms = 900;
  options.hedge_after_ms = 60;
  server::HttpServer router_http;
  auto router = MakeRouter(options, &router_http);

  auto r = TimedGet(router_http.port(), kQuery);
  // Tarpit never answers; without allow_partial the fan-in fails. Every
  // *failed* leg is a timeout (the live shard answered fine), so the
  // triage reports pure deadline exhaustion: 504.
  EXPECT_EQ(r.status, 504) << r.status << " " << r.body;
  EXPECT_NE(r.body.find(std::to_string(tarpit.port)), std::string::npos)
      << r.body;
  EXPECT_LT(r.elapsed_ms, 3500) << "tarpit leg outlived the deadline";
  EXPECT_GE(TotalHedges(router->stats()), 1u)
      << "hedge never fired against the silent shard";

  router_http.Stop();
}

// Every shard silent: the triage downgrades to 504 (pure deadline
// exhaustion), still within budget.
TEST(RouterFaultTest, AllShardsHungIsA504WithinBudget) {
  Tarpit t1, t2;
  server::RouterOptions options;
  options.shards = {{"127.0.0.1", t1.port}, {"127.0.0.1", t2.port}};
  options.default_deadline_ms = 600;
  options.hedge_after_ms = 0;
  server::HttpServer router_http;
  auto router = MakeRouter(options, &router_http);

  auto r = TimedGet(router_http.port(), kQuery);
  EXPECT_EQ(r.status, 504) << r.status << " " << r.body;
  EXPECT_LT(r.elapsed_ms, 3000);
  router_http.Stop();
}

// allow_partial: with one shard down the router answers from the
// survivors, marks the response degraded, and still bounds latency.
TEST(RouterFaultTest, AllowPartialServesDegradedResults) {
  EventLog log = FaultLog(79);
  auto parts = PartitionLog(log, 2);
  Node live(parts[0]);

  server::RouterOptions options;
  options.shards = {{"127.0.0.1", live.http->port()},
                    {"127.0.0.1", DeadPort()}};
  options.default_deadline_ms = 1200;
  options.hedge_after_ms = 0;
  options.allow_partial = true;
  server::HttpServer router_http;
  auto router = MakeRouter(options, &router_http);

  auto r = TimedGet(router_http.port(), kQuery);
  EXPECT_EQ(r.status, 200) << r.status << " " << r.body;
  auto degraded = r.headers.find("x-seqdet-degraded");
  ASSERT_NE(degraded, r.headers.end()) << "degraded marker missing";
  EXPECT_EQ(degraded->second, "1/2 shards");
  EXPECT_NE(r.body.find("\"matches\""), std::string::npos) << r.body;
  EXPECT_LT(r.elapsed_ms, 3000);
  EXPECT_GE(router->stats().degraded, 1u);

  // Stats and continue run the same degraded path.
  auto stats = TimedGet(router_http.port(), "/stats?q=act_0%20-%3E%20act_1");
  EXPECT_EQ(stats.status, 200) << stats.body;
  EXPECT_NE(stats.headers.find("x-seqdet-degraded"), stats.headers.end());

  router_http.Stop();
}

// Circuit breaker lifecycle: consecutive transport failures open it (and
// open-breaker requests short-circuit without dialing); after the
// cooldown one half-open probe goes through, and a recovered worker on
// the same port closes it again.
TEST(RouterFaultTest, BreakerOpensShortCircuitsAndRecovers) {
  EventLog log = FaultLog(80);
  auto parts = PartitionLog(log, 2);
  Node flaky(parts[0]);
  Node stable(parts[1]);
  const uint16_t flaky_port = flaky.http->port();

  server::RouterOptions options;
  options.shards = {{"127.0.0.1", flaky_port}, {"127.0.0.1", stable.http->port()}};
  options.default_deadline_ms = 1500;
  options.hedge_after_ms = 0;
  options.allow_partial = true;  // keep end-to-end 200s while flaky is down
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_ms = 300;
  server::HttpServer router_http;
  auto router = MakeRouter(options, &router_http);

  ASSERT_EQ(TimedGet(router_http.port(), kQuery).status, 200);

  // Take the flaky worker down; its port stays reserved by SO_REUSEADDR
  // semantics for the restart below.
  flaky.http->Stop();

  // Enough failures to trip the threshold, then one more that must be
  // rejected by the open breaker without touching the network.
  for (int i = 0; i < 2; ++i) {
    auto r = TimedGet(router_http.port(), kQuery);
    EXPECT_EQ(r.status, 200) << r.body;  // degraded by the stable shard
  }
  auto tripped = TimedGet(router_http.port(), kQuery);
  EXPECT_EQ(tripped.status, 200);

  auto snapshot = router->stats();
  ASSERT_EQ(snapshot.shards.size(), 2u);
  const auto& flaky_stats = snapshot.shards[0];
  EXPECT_GE(flaky_stats.breaker_opens, 1u) << "breaker never opened";
  EXPECT_GE(flaky_stats.short_circuits, 1u)
      << "open breaker did not short-circuit";

  // Recovery: same service, fresh HttpServer on the same port.
  flaky.http = std::make_unique<server::HttpServer>();
  flaky.service->RegisterRoutes(flaky.http.get());
  Status restarted = flaky.http->Start(flaky_port);
  ASSERT_TRUE(restarted.ok()) << restarted;

  // After the cooldown the next scatter admits one half-open probe; its
  // success closes the breaker and the response stops being degraded.
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  bool recovered = false;
  for (int i = 0; i < 20 && !recovered; ++i) {
    auto r = TimedGet(router_http.port(), kQuery);
    EXPECT_EQ(r.status, 200) << r.body;
    recovered = r.headers.find("x-seqdet-degraded") == r.headers.end();
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(recovered) << "breaker never recovered after worker restart";
  auto closed = router->stats();
  EXPECT_EQ(closed.shards[0].breaker, "closed");

  router_http.Stop();
}

// Per-request deadline_ms is honored end to end: a tight budget against
// a tarpit fails in about that budget, not the router default.
TEST(RouterFaultTest, PerRequestDeadlineOverridesDefault) {
  Tarpit tarpit;
  server::RouterOptions options;
  options.shards = {{"127.0.0.1", tarpit.port}};
  options.default_deadline_ms = 30000;  // default would hang for 30s
  options.hedge_after_ms = 0;
  server::HttpServer router_http;
  auto router = MakeRouter(options, &router_http);

  auto r = TimedGet(router_http.port(),
                    kQuery + std::string("&deadline_ms=300"));
  EXPECT_EQ(r.status, 504) << r.status << " " << r.body;
  EXPECT_LT(r.elapsed_ms, 2000)
      << "per-request deadline did not bound the tarpit leg";
  router_http.Stop();
}

}  // namespace
}  // namespace seqdet
