// Concurrency stress for the shard router (stress ctest label; also run
// under TSan by tools/check_tsan.sh). Client threads hammer every route
// through the router while a chaos thread repeatedly stops and restarts
// one worker's HttpServer on its fixed port — so scatters constantly
// race connection teardown, breaker transitions, hedges and half-open
// probes. The invariants are coarse but load-bearing: every request
// resolves with a definite status (200/503/504, or a relayed 4xx for the
// malformed-query thread), nothing hangs past its deadline budget, and
// the router's counters stay coherent.
//
// SEQDET_STRESS_SECONDS (default 5) scales the run.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "datagen/generators.h"
#include "gtest/gtest.h"
#include "index/sequence_index.h"
#include "index/trace_shard.h"
#include "log/event_log.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "server/shard_router.h"
#include "storage/database.h"

namespace seqdet {
namespace {

using eventlog::EventLog;
using index::IndexOptions;
using index::Policy;
using index::SequenceIndex;

int64_t StressSeconds() {
  if (const char* env = std::getenv("SEQDET_STRESS_SECONDS")) {
    return std::strtoll(env, nullptr, 10);
  }
  return 5;
}

EventLog StressLog(uint64_t seed) {
  datagen::RandomLogConfig config;
  config.num_traces = 80;
  config.max_events_per_trace = 30;
  config.num_activities = 8;
  config.seed = seed;
  config.mean_gap = 5;
  return datagen::GenerateRandomLog(config);
}

std::vector<EventLog> PartitionLog(const EventLog& log, size_t num_shards) {
  std::vector<EventLog> parts(num_shards);
  for (auto& part : parts) {
    for (const auto& name : log.dictionary().names()) {
      part.dictionary().Intern(name);
    }
  }
  for (const auto& trace : log.traces()) {
    parts[index::ShardOfTrace(trace.id, num_shards)].AddTrace(trace);
  }
  return parts;
}

struct Node {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<SequenceIndex> index;
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::HttpServer> http;

  explicit Node(const EventLog& log) {
    storage::DbOptions db_options;
    db_options.table.in_memory = true;
    db_options.table.use_wal = false;
    db = std::move(storage::Database::Open("", db_options)).value();
    IndexOptions options;
    options.policy = Policy::kSkipTillNextMatch;
    options.num_threads = 1;
    options.posting_block_bytes = 96;
    // Fold nearly every append so background folds overlap the routed
    // traffic on every shard (the writer thread below keeps them fed).
    options.maintenance.auto_fold = true;
    options.maintenance.check_interval_ms = 5;
    options.maintenance.min_pending_bytes = 1;
    options.maintenance.min_pending_ops = 1;
    index = std::move(SequenceIndex::Open(db.get(), options)).value();
    auto stats = index->Update(log);
    EXPECT_TRUE(stats.ok()) << stats.status();
    service = std::make_unique<server::QueryService>(index.get());
    http = std::make_unique<server::HttpServer>();
    service->RegisterRoutes(http.get());
    EXPECT_TRUE(http->Start(0).ok());
  }
  ~Node() {
    if (http) http->Stop();
  }
};

TEST(RouterStressTest, ChaosRestartUnderConcurrentLoad) {
  EventLog log = StressLog(4242);
  auto parts = PartitionLog(log, 2);
  Node stable(parts[0]);
  Node chaos(parts[1]);
  const uint16_t chaos_port = chaos.http->port();

  server::RouterOptions options;
  options.shards = {{"127.0.0.1", stable.http->port()},
                    {"127.0.0.1", chaos_port}};
  options.default_deadline_ms = 1500;
  options.hedge_after_ms = 40;
  options.allow_partial = true;  // chaos worker down => degraded 200s
  options.breaker_failure_threshold = 3;
  options.breaker_cooldown_ms = 100;
  auto router = std::make_unique<server::ShardRouter>(options);
  server::HttpServer router_http;
  router->RegisterRoutes(&router_http);
  ASSERT_TRUE(router_http.Start(0).ok());
  const uint16_t router_port = router_http.port();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> ok_200{0};
  std::atomic<int> violations{0};

  const std::vector<std::string> targets = {
      "/detect?q=act_0%20-%3E%20act_1&limit=50",
      "/detect?q=act_2%20-%3E%20act_3%20-%3E%20act_1&limit=5",
      "/stats?q=act_0%20-%3E%20act_1",
      "/stats?q=act_1%20-%3E%20act_2&last=1",
      "/continue?q=act_0%20-%3E%20act_1&mode=accurate",
      "/continue?q=act_0%20-%3E%20act_1&mode=fast",
      "/continue?q=act_0%20-%3E%20act_1&mode=hybrid&topk=3",
      "/info",
      "/health",
      "/detect?q=definitely_not_an_activity",  // relayed 400
  };

  auto client_loop = [&](size_t worker) {
    server::HttpClient client(router_port);
    size_t i = worker;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string& target = targets[i++ % targets.size()];
      auto start = std::chrono::steady_clock::now();
      auto response = client.Get(target);
      auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      // Hard bound: deadline 1500ms + io slack; anything slower means a
      // leg escaped the budget.
      if (elapsed_ms > 6000) violations.fetch_add(1);
      if (!response.ok()) {
        // The router itself must stay reachable; transport errors to the
        // router are a failure of the harness, not of a shard.
        violations.fetch_add(1);
        continue;
      }
      int s = response->status;
      if (s == 200) ok_200.fetch_add(1);
      if (s != 200 && s != 400 && s != 503 && s != 504) {
        ADD_FAILURE() << "unexpected status " << s << " for " << target
                      << ": " << response->body;
        violations.fetch_add(1);
      }
      completed.fetch_add(1);
    }
  };

  std::vector<std::thread> clients;
  for (size_t i = 0; i < 6; ++i) clients.emplace_back(client_loop, i);

  // Writer: keeps appending trace batches to both shards (respecting the
  // trace-hash partition) so the aggressive auto-fold services actually
  // run folds concurrently with the routed queries. The chaos shard's
  // index stays live across HttpServer restarts, so its folds continue
  // even while the port is down.
  std::thread writer([&] {
    Rng rng(99);
    uint64_t next_trace = 1'000'000;
    while (!stop.load(std::memory_order_relaxed)) {
      EventLog batch;
      for (const auto& name : log.dictionary().names()) {
        batch.dictionary().Intern(name);
      }
      for (int t = 0; t < 4; ++t) {
        uint64_t id = next_trace++;
        int64_t ts = 0;
        for (int e = 0; e < 6; ++e) {
          ts += 1 + static_cast<int64_t>(rng.NextBounded(5));
          batch.Append(id, "act_" + std::to_string(rng.NextBounded(8)), ts);
        }
      }
      batch.SortAllTraces();
      EventLog shard_batches[2];
      for (auto& sb : shard_batches) {
        for (const auto& name : batch.dictionary().names()) {
          sb.dictionary().Intern(name);
        }
      }
      for (const auto& trace : batch.traces()) {
        shard_batches[index::ShardOfTrace(trace.id, 2)].AddTrace(trace);
      }
      if (!stable.index->Update(shard_batches[0]).ok() ||
          !chaos.index->Update(shard_batches[1]).ok()) {
        violations.fetch_add(1);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // Chaos: stop the worker, let breakers trip and hedges fire into the
  // refused port, then restart on the same port (SO_REUSEADDR) and let
  // half-open probes recover it.
  std::thread chaos_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      chaos.http->Stop();
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      auto fresh = std::make_unique<server::HttpServer>();
      chaos.service->RegisterRoutes(fresh.get());
      // The port can linger briefly if an accept raced the stop; retry.
      for (int attempt = 0; attempt < 50; ++attempt) {
        if (fresh->Start(chaos_port).ok()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      chaos.http = std::move(fresh);
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(StressSeconds()));
  stop.store(true);
  for (auto& t : clients) t.join();
  chaos_thread.join();
  writer.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(completed.load(), 0u);
  EXPECT_GT(ok_200.load(), 0u) << "no request ever fully succeeded";

  auto stats = router->stats();
  EXPECT_EQ(stats.shards.size(), 2u);
  EXPECT_GE(stats.scatters, 1u);
  // Counter coherence: every scatter landed in exactly one outcome
  // bucket, so the buckets cannot exceed the scatters. (/info and
  // /health do not scatter through the counted path in the same way;
  // merged_ok only counts fan-in merges.)
  EXPECT_LE(stats.merged_ok + stats.degraded + stats.partial_503,
            stats.scatters + 1);
  for (const auto& shard : stats.shards) {
    EXPECT_GE(shard.requests, shard.failures);
  }

  router_http.Stop();
}

}  // namespace
}  // namespace seqdet
