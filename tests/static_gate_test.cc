// Tier-1 gate over the static-analysis tooling itself (DESIGN.md §16).
//
// The negative-compile probes and the seqdet-lint rules only help if
// they actually fire, so this test shells the gates the way CI does and
// asserts both directions:
//
//   * the probe harnesses pass — i.e. every seeded violation in
//     tools/static_probes/ is rejected by its gate (a probe that
//     compiles, or passes the lint, fails THIS test);
//   * the tree itself is clean — the lint finds nothing to report;
//   * the engine rejects a violation it has never seen: a
//     blocking-under-lock snippet written to a temp file at test time,
//     so the harness cannot have been special-cased to the checked-in
//     probe files.
//
// The clang-only steps inside check_static.sh self-skip with a warning
// on machines without clang; the lint layer (python3) is the portable
// enforcing layer, so this test skips only when python3 is absent.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;
};

// Runs `command` (stderr folded into stdout), captures output + exit code.
RunResult RunCommand(const std::string& command) {
  RunResult result;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  while (::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

bool HavePython() { return RunCommand("python3 --version").exit_code == 0; }

const fs::path kRepoDir = SEQDET_REPO_DIR;

std::string Tool(const char* rel) { return (kRepoDir / rel).string(); }

TEST(StaticGateTest, LintProbesAreRejected) {
  if (!HavePython()) GTEST_SKIP() << "python3 not available";
  RunResult r = RunCommand(Tool("tools/seqdet_lint.sh") + " --probes");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // Each rule must have been proven live, not skipped.
  for (const char* rule :
       {"R1-blocking-under-lock", "R2-raw-fd", "R3-ignored-status",
        "R4-unbounded-loop", "R5-lock-order"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos)
        << "probe harness never exercised " << rule << "\n"
        << r.output;
  }
}

TEST(StaticGateTest, TreeIsLintClean) {
  if (!HavePython()) GTEST_SKIP() << "python3 not available";
  RunResult r = RunCommand(Tool("tools/seqdet_lint.sh"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(StaticGateTest, NegativeProbesAreRejected) {
  if (!HavePython()) GTEST_SKIP() << "python3 not available";
  RunResult r = RunCommand(Tool("tools/check_static.sh") + " --negative");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("negative probes clean"), std::string::npos)
      << r.output;
}

TEST(StaticGateTest, FreshSeededViolationIsRejected) {
  if (!HavePython()) GTEST_SKIP() << "python3 not available";
  // A blocking-under-lock violation the engine has never seen: written
  // here, not checked in, so passing this test requires the real rule,
  // not a probe-filename allowlist.
  const fs::path dir =
      fs::temp_directory_path() /
      ("seqdet_lint_seed_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const fs::path seeded = dir / "seeded_violation.cc";
  {
    std::ofstream out(seeded);
    out << "#include \"common/sync.h\"\n"
        << "#include <sys/socket.h>\n"
        << "void Leak(seqdet::Mutex& mu, int fd) {\n"
        << "  seqdet::MutexLock lock(mu);\n"
        << "  (void)::recv(fd, nullptr, 0, 0);\n"
        << "}\n";
  }
  RunResult r = RunCommand("python3 " + Tool("tools/lint_rules/seqdet_lint.py") +
                    " --root " + kRepoDir.string() + " --all-rules " +
                    seeded.string());
  fs::remove_all(dir);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("R1-blocking-under-lock"), std::string::npos)
      << r.output;
}

}  // namespace
