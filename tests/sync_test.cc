// Tests for the annotated synchronization primitives (common/sync.h).
//
// The wrappers must behave exactly like the std primitives they replace —
// the thread-safety annotations are compile-time only. Contention tests
// here run under TSan too (tier1 suite is part of the sanitizer sweeps);
// the compile-time side of the gate is covered by
// tools/check_static.sh --negative.

#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace seqdet {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(MutexTest, MutualExclusionUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  Mutex mu;
  int64_t counter = 0;  // unsynchronized int: torn updates would show

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIters);
}

TEST(MutexTest, TryLockReflectsHeldState) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  // TryLock must fail from another thread while held (same-thread try_lock
  // on a held std::mutex is UB, so probe from a second thread).
  std::thread probe([&] {
    acquired.store(mu.TryLock());
    if (acquired.load()) mu.Unlock();
  });
  probe.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();

  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockRelockRoundTrip) {
  // The Unlock()/Lock() mid-scope pattern the maintenance loop uses.
  Mutex mu;
  int guarded = 0;
  MutexLock lock(mu);
  guarded = 1;
  lock.Unlock();
  {
    MutexLock other(mu);  // must not deadlock: lock released above
  }
  lock.Lock();
  EXPECT_EQ(guarded, 1);
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  // Two fields updated together under WriterLock; ReaderLock must never
  // observe them out of sync.
  int64_t a = 0;
  int64_t b = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> tears{0};
  std::atomic<int64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ReaderLock lock(mu);
        if (a != b) tears.fetch_add(1);
        reads.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 1; i <= 5000; ++i) {
      WriterLock lock(mu);
      a = i;
      b = i;
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& r : readers) r.join();

  EXPECT_EQ(tears.load(), 0);
  EXPECT_GT(reads.load(), 0);
  ReaderLock lock(mu);
  EXPECT_EQ(a, 5000);
  EXPECT_EQ(b, 5000);
}

TEST(SharedMutexTest, TryLockVariants) {
  SharedMutex mu;
  mu.LockShared();
  std::atomic<bool> shared_ok{false};
  std::atomic<bool> exclusive_ok{true};
  std::thread probe([&] {
    // A second shared acquisition must succeed, an exclusive one must not.
    shared_ok.store(mu.TryLockShared());
    if (shared_ok.load()) mu.UnlockShared();
    exclusive_ok.store(mu.TryLock());
    if (exclusive_ok.load()) mu.Unlock();
  });
  probe.join();
  EXPECT_TRUE(shared_ok.load());
  EXPECT_FALSE(exclusive_ok.load());
  mu.UnlockShared();
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 1;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto start = steady_clock::now();
  bool notified = cv.WaitFor(mu, milliseconds(50));
  EXPECT_FALSE(notified);
  EXPECT_GE(steady_clock::now() - start, milliseconds(45));
}

TEST(CondVarTest, WaitUntilHonorsDeadlineAndNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> woke_in_time{false};

  std::thread waiter([&] {
    const auto deadline = steady_clock::now() + milliseconds(5000);
    MutexLock lock(mu);
    while (!ready) {
      if (!cv.WaitUntil(mu, deadline)) break;  // timed out
    }
    woke_in_time.store(ready);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(woke_in_time.load());
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  constexpr int kWaiters = 6;
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& w : waiters) w.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, ProducerConsumerUnderContention) {
  // A bounded queue driven purely by the wrappers: the canonical predicate
  // loops (no lost wakeups, no deadlock) under real contention.
  constexpr int kItems = 10000;
  constexpr size_t kCapacity = 16;
  Mutex mu;
  CondVar not_full;
  CondVar not_empty;
  std::vector<int> queue;
  bool done = false;
  int64_t sum = 0;

  std::thread consumer([&] {
    for (;;) {
      int item;
      {
        MutexLock lock(mu);
        while (queue.empty() && !done) not_empty.Wait(mu);
        if (queue.empty() && done) return;
        item = queue.back();
        queue.pop_back();
      }
      not_full.NotifyOne();
      sum += item;
    }
  });

  for (int i = 1; i <= kItems; ++i) {
    {
      MutexLock lock(mu);
      while (queue.size() >= kCapacity) not_full.Wait(mu);
      queue.push_back(i);
    }
    not_empty.NotifyOne();
  }
  {
    MutexLock lock(mu);
    done = true;
  }
  not_empty.NotifyAll();
  consumer.join();

  EXPECT_EQ(sum, static_cast<int64_t>(kItems) * (kItems + 1) / 2);
}

}  // namespace
}  // namespace seqdet
