#!/usr/bin/env bash
# seqdet-lint: the source-level rule layer of the static gate (DESIGN.md
# §16). Two engines over the same rule catalog:
#
#   1. tools/lint_rules/seqdet_lint.py — the portable reference engine
#      (python3, zero deps): R1 blocking-under-lock, R2 raw ::close
#      outside common/unique_fd.h, R3 IgnoreStatus without justification,
#      R4 unbounded hot-path loops, R5 lock-order (lock_order.map). This
#      layer ALWAYS runs and is the enforcing one.
#   2. tools/lint_rules/*.query — clang-query AST matchers, the precise
#      layer for what textual scanning cannot see (macro expansions,
#      cross-function nesting). Runs only where clang-query and a
#      compile_commands.json exist; skipped WITH A LOUD WARNING
#      otherwise (same policy as check_static.sh's clang steps).
#
# Usage: tools/seqdet_lint.sh [--probes] [files...]
#   --probes   probe harness: every lint negative probe in
#              tools/static_probes/ must (a) be valid C++ and (b) FAIL
#              the lint with its expected rule — proof the rules reject
#              real violations instead of being decorative.
#   files...   lint only these files (default: the whole tree).
set -uo pipefail

REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
ENGINE="${REPO_DIR}/tools/lint_rules/seqdet_lint.py"
PROBE_DIR="${REPO_DIR}/tools/static_probes"
HOST_CXX="${CXX:-c++}"

find_tool() {
  local c
  for c in "$@"; do
    if command -v "$c" >/dev/null 2>&1; then
      command -v "$c"
      return 0
    fi
  done
  return 1
}

PYTHON="$(find_tool python3 python || true)"
CLANG_QUERY="$(find_tool clang-query clang-query-21 clang-query-20 \
  clang-query-19 clang-query-18 clang-query-17 clang-query-16 \
  clang-query-15 clang-query-14 clang-query-13 || true)"

warn_skip() {
  echo "!!!" >&2
  echo "!!! WARNING: $1" >&2
  echo "!!! This gate is NOT being enforced on this machine." >&2
  echo "!!!" >&2
}

failed=0
fail() {
  echo "FAIL: $1" >&2
  failed=1
}

if [[ -z "${PYTHON}" ]]; then
  warn_skip "python3 not found; seqdet-lint cannot run its rule engine"
  exit 0
fi

# --- probe harness ---------------------------------------------------------
if [[ "${1:-}" == "--probes" ]]; then
  # probe file -> the rule tag its violation report must carry.
  probes=(
    "blocking_under_lock_negative.cc R1-blocking-under-lock"
    "raw_fd_negative.cc R2-raw-fd"
    "ignored_status_negative.cc R3-ignored-status"
    "unbounded_loop_negative.cc R4-unbounded-loop"
    "lock_order_negative.cc R5-lock-order"
  )
  for entry in "${probes[@]}"; do
    probe="${entry%% *}"
    rule="${entry##* }"
    path="${PROBE_DIR}/${probe}"
    echo "=== lint probe: ${probe} must fail with ${rule} ==="
    if [[ ! -f "${path}" ]]; then
      fail "${probe} is missing"
      continue
    fi
    # The probe must fail for the RIGHT reason: valid C++ first.
    if ! "${HOST_CXX}" -std=c++20 -I "${REPO_DIR}/src" -fsyntax-only \
        "${path}" 2>/dev/null; then
      fail "${probe} is not valid C++ — it would 'fail' the lint trivially"
      continue
    fi
    out="$("${PYTHON}" "${ENGINE}" --root "${REPO_DIR}" --all-rules \
      "${path}" 2>&1)"
    status=$?
    if [[ "${status}" -eq 0 ]]; then
      fail "${probe} passed the lint — rule ${rule} is dead"
    elif ! grep -q "\[${rule}\]" <<<"${out}"; then
      echo "${out}" >&2
      fail "${probe} failed, but not with ${rule}"
    else
      echo "ok: rejected as expected (${rule})"
    fi
  done
  [[ "${failed}" == "0" ]] && echo "=== lint probes clean ==="
  exit "${failed}"
fi

# --- layer 1: the python rule engine (enforcing) ---------------------------
echo "=== seqdet-lint rule engine (${PYTHON}) ==="
if ! "${PYTHON}" "${ENGINE}" --root "${REPO_DIR}" "$@"; then
  fail "seqdet-lint violations (rules R1-R5 above)"
else
  echo "ok: lint clean"
fi

# --- layer 2: clang-query AST rules (best-effort precision) ----------------
if [[ -n "${CLANG_QUERY}" ]]; then
  QUERY_DB=""
  for d in "${REPO_DIR}/build-static" "${REPO_DIR}/build"; do
    if [[ -f "${d}/compile_commands.json" ]]; then
      QUERY_DB="${d}"
      break
    fi
  done
  if [[ -z "${QUERY_DB}" ]]; then
    warn_skip "no compile_commands.json (configure a build first); \
skipping the clang-query layer"
  else
    mapfile -t query_files < <(cd "${REPO_DIR}" && \
      find src -name '*.cc' | sort)
    for rules in "${REPO_DIR}"/tools/lint_rules/*.query; do
      echo "=== clang-query: $(basename "${rules}") (-p ${QUERY_DB}) ==="
      out="$(cd "${REPO_DIR}" && "${CLANG_QUERY}" -p "${QUERY_DB}" \
        -f "${rules}" "${query_files[@]}" 2>&1)"
      if grep -q "^[0-9]* match" <<<"${out}" && \
          ! grep -q "^0 matches" <<<"${out}"; then
        echo "${out}" | grep -v "^0 matches" >&2
        fail "clang-query matches in $(basename "${rules}") — triage above"
      else
        echo "ok: no matches"
      fi
    done
  fi
else
  warn_skip "clang-query not found; skipping the AST rule layer"
fi

[[ "${failed}" == "0" ]] && echo "=== seqdet-lint clean ==="
exit "${failed}"
