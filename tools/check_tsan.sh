#!/usr/bin/env bash
# Builds the concurrency-sensitive test binaries under ThreadSanitizer and
# runs them. Exercises the storage engine, the index (including the
# versioned posting cache, its Update-vs-DetectBatch race test, and the
# background maintenance service), the query processor, the
# writer/reader/fold stress test, the worker-pool HTTP serving stress
# test, the morsel-driven parallel-query stress test, and the shard
# router chaos stress test
# (SEQDET_STRESS_SECONDS scales the stress runs).
#
# Usage: tools/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_DIR}/build-tsan}"
TESTS=(sync_test storage_test storage_param_test index_test
       posting_cache_test query_test maintenance_stress_test server_test
       server_stress_test parallel_query_stress_test router_stress_test)

cmake -B "${BUILD_DIR}" -S "${REPO_DIR}" -DSEQDET_SANITIZE=thread
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target "${TESTS[@]}" \
      differential_test

# halt_on_error makes any report fail the run instead of just logging it.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
for t in "${TESTS[@]}"; do
  echo "=== TSAN: ${t} ==="
  "${BUILD_DIR}/tests/${t}"
done

# The extended-pattern differential axis under TSan: its ExpectAgreement
# runs every query through 2- and 4-thread morsel engines, so races in the
# extended join/closure path surface here. Reduced pattern count — TSan's
# ~10x slowdown makes the full default prohibitive, and the race surface
# does not grow with more patterns.
echo "=== TSAN: differential_test (extended axis) ==="
SEQDET_DIFF_PATTERNS="${SEQDET_DIFF_PATTERNS:-100}" \
  "${BUILD_DIR}/tests/differential_test" --gtest_filter='*Extended*'
echo "=== TSAN: all clean ==="
