#!/usr/bin/env bash
# Bench regression gate: runs the benches that have committed baseline
# JSONs (BENCH_storage.json, BENCH_posting_blocks.json,
# BENCH_query_parallel.json, BENCH_router.json) and fails when any
# `speedup` or `*ms_per_query` field regresses by more than the tolerance
# (default 20%) against the baseline — lower speedup or higher query time.
#
# Wall-clock numbers on a loaded single-core box are noisy, so each bench
# runs SEQDET_BENCH_RUNS times (default 3) and the most favorable value per
# field (min ms, max speedup) is compared: transient scheduler noise should
# not fail the gate, while a real regression shows up in every run.
#
# Usage: tools/check_bench.sh [build-dir]     (default: build)
# Env:   SEQDET_BENCH_RUNS       repetitions of each bench binary (3)
#        SEQDET_BENCH_TOLERANCE  allowed fractional regression (0.20)
set -euo pipefail

REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_DIR}/build}"
RUNS="${SEQDET_BENCH_RUNS:-3}"
TOLERANCE="${SEQDET_BENCH_TOLERANCE:-0.20}"

if ! command -v python3 >/dev/null 2>&1; then
  echo "check_bench: python3 not found; skipping bench gate" >&2
  exit 0
fi

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "=== BENCH: configure (${BUILD_DIR}) ==="
  cmake -B "${BUILD_DIR}" -S "${REPO_DIR}"
fi
echo "=== BENCH: build bench binaries ==="
cmake --build "${BUILD_DIR}" -j"$(nproc)" \
  --target bench_storage bench_posting_blocks bench_parallel_query bench_router

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

declare -A BASELINES=(
  [storage]="${REPO_DIR}/BENCH_storage.json"
  [posting_blocks]="${REPO_DIR}/BENCH_posting_blocks.json"
  [query_parallel]="${REPO_DIR}/BENCH_query_parallel.json"
  [router]="${REPO_DIR}/BENCH_router.json"
)
declare -A BINARIES=(
  [storage]="${BUILD_DIR}/bench/bench_storage"
  [posting_blocks]="${BUILD_DIR}/bench/bench_posting_blocks"
  [query_parallel]="${BUILD_DIR}/bench/bench_parallel_query"
  [router]="${BUILD_DIR}/bench/bench_router"
)

status=0
for bench in storage posting_blocks query_parallel router; do
  baseline="${BASELINES[$bench]}"
  binary="${BINARIES[$bench]}"
  if [[ ! -f "${baseline}" ]]; then
    echo "check_bench: no baseline ${baseline}; skipping ${bench}" >&2
    continue
  fi
  fresh=()
  for run in $(seq 1 "${RUNS}"); do
    out="${TMP_DIR}/${bench}_${run}.json"
    echo "=== BENCH: ${bench} run ${run}/${RUNS} ==="
    "${binary}" --out="${out}" >/dev/null
    fresh+=("${out}")
  done
  if ! python3 - "${baseline}" "${TOLERANCE}" "${fresh[@]}" <<'PY'
import json
import sys

baseline_path, tolerance, run_paths = sys.argv[1], float(sys.argv[2]), sys.argv[3:]
baseline = json.load(open(baseline_path))
runs = [json.load(open(p)) for p in run_paths]


def walk(node, path):
    """Yields (path, key, value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from walk(value, path + [key])
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk(value, path + [i])
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, node


def lookup(node, path):
    for step in path:
        try:
            node = node[step]
        except (KeyError, IndexError, TypeError):
            return None
    return node


failures = []
for path, base_value in walk(baseline, []):
    key = str(path[-1])
    is_speedup = "speedup" in key
    is_ms = key.endswith("ms_per_query")
    if not (is_speedup or is_ms):
        continue
    values = [v for v in (lookup(r, path) for r in runs) if v is not None]
    if not values:
        failures.append(f"{'.'.join(map(str, path))}: missing from fresh run")
        continue
    # Best across runs: scheduler noise only ever makes a run look worse.
    best = max(values) if is_speedup else min(values)
    name = ".".join(map(str, path))
    if is_speedup and best < base_value * (1 - tolerance):
        failures.append(
            f"{name}: speedup {best:.3f} < baseline {base_value:.3f} "
            f"- {tolerance:.0%}")
    elif is_ms and best > base_value * (1 + tolerance):
        failures.append(
            f"{name}: {best:.4f} ms > baseline {base_value:.4f} "
            f"+ {tolerance:.0%}")
    else:
        print(f"  ok {name}: baseline {base_value:.4f}, best {best:.4f}")
if failures:
    print(f"{baseline_path}: {len(failures)} regression(s)", file=sys.stderr)
    for f in failures:
        print(f"  REGRESSION {f}", file=sys.stderr)
    sys.exit(1)
PY
  then
    status=1
  fi
done

if [[ "${status}" != "0" ]]; then
  echo "=== bench regression gate FAILED ===" >&2
  exit 1
fi
echo "=== bench regression gate clean ==="
