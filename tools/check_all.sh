#!/usr/bin/env bash
# Full sanitizer sweep: builds the whole test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer and runs ctest, then
# delegates to check_tsan.sh for the ThreadSanitizer pass over the
# concurrency-sensitive binaries.
#
# The static gate (tools/check_static.sh: Clang thread-safety build,
# clang-tidy, negative-compile probes, raw-primitive grep) runs first; its
# Clang-only steps self-skip with a loud warning when the tools are absent.
#
# Usage: tools/check_all.sh [--static] [asan-build-dir [tsan-build-dir]]
#   (defaults: build-asan, build-tsan)
#   --static   run only the fast pre-merge slice: the static gate
#              (check_static.sh, which includes the negative probes and
#              seqdet-lint) plus a plain build and the tier-1 ctest
#              labels, then exit — no sanitizer sweeps, no smoke.
# Set SEQDET_SKIP_TSAN=1 to run only the ASan/UBSan pass.
# Set SEQDET_SKIP_STATIC=1 to skip the static gate.
# Set SEQDET_RUN_BENCH=1 to also run the bench regression gate
# (tools/check_bench.sh against the committed BENCH_*.json baselines);
# off by default because wall-clock comparisons need a quiet machine.
set -euo pipefail

REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
STATIC_ONLY=0
if [[ "${1:-}" == "--static" ]]; then
  STATIC_ONLY=1
  shift
fi
ASAN_DIR="${1:-${REPO_DIR}/build-asan}"
TSAN_DIR="${2:-${REPO_DIR}/build-tsan}"

if [[ "${SEQDET_SKIP_STATIC:-0}" != "1" ]]; then
  echo "=== STATIC: check_static.sh ==="
  "${REPO_DIR}/tools/check_static.sh"
fi

if [[ "${STATIC_ONLY}" == "1" ]]; then
  PLAIN_DIR="${REPO_DIR}/build"
  echo "=== STATIC-ONLY: plain build + tier-1 ctest (${PLAIN_DIR}) ==="
  cmake -B "${PLAIN_DIR}" -S "${REPO_DIR}"
  cmake --build "${PLAIN_DIR}" -j"$(nproc)"
  ctest --test-dir "${PLAIN_DIR}" --output-on-failure -j"$(nproc)" \
      -L tier1
  echo "=== check_all --static: all clean ==="
  exit 0
fi

echo "=== ASAN/UBSAN: configure + build (${ASAN_DIR}) ==="
cmake -B "${ASAN_DIR}" -S "${REPO_DIR}" -DSEQDET_SANITIZE=address,undefined
cmake --build "${ASAN_DIR}" -j"$(nproc)"

# Fail on any UBSan report (by default UBSan only logs and continues);
# ASan aborts on error already.
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
echo "=== ASAN/UBSAN: ctest ==="
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j"$(nproc)"

# End-to-end smoke of the extended query grammar and the compliance
# templates through the real CLI (under ASan): generate -> index -> query.
echo "=== SMOKE: compliance templates via seqdet query ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
SEQDET="${ASAN_DIR}/tools/seqdet"
"${SEQDET}" generate --dataset=max_100 --out="${SMOKE_DIR}/smoke.csv"
"${SEQDET}" index --db="${SMOKE_DIR}/db" --log="${SMOKE_DIR}/smoke.csv"
"${SEQDET}" query --db="${SMOKE_DIR}/db" --q="response(act_0, act_1)" \
    --limit=5 > /dev/null
"${SEQDET}" query --db="${SMOKE_DIR}/db" --q="precedence(act_0, act_1)" \
    --limit=5 > /dev/null
"${SEQDET}" query --db="${SMOKE_DIR}/db" --q="absence(act_2)" \
    --limit=5 > /dev/null
"${SEQDET}" query --db="${SMOKE_DIR}/db" \
    --q="act_0 (act_1|act_2)+ !act_3 act_4 within 1h" --limit=5 > /dev/null

# Sharded serving smoke (under ASan): shard-split the same log, serve the
# two shards, front them with the router, and byte-compare a routed
# /detect against the single unsharded server.
echo "=== SMOKE: sharded scatter-gather router ==="
"${SEQDET}" shard-split --log="${SMOKE_DIR}/smoke.csv" --shards=2 \
    --out="${SMOKE_DIR}/shards"
SMOKE_PIDS=()
cleanup_smoke_pids() {
  for pid in "${SMOKE_PIDS[@]:-}"; do
    kill "${pid}" 2>/dev/null || true
  done
  for pid in "${SMOKE_PIDS[@]:-}"; do
    wait "${pid}" 2>/dev/null || true
  done
}
trap 'cleanup_smoke_pids; rm -rf "${SMOKE_DIR}"' EXIT
PORT_BASE=$((18400 + RANDOM % 1000))
"${SEQDET}" serve --db="${SMOKE_DIR}/db" --port=$((PORT_BASE)) \
    > /dev/null & SMOKE_PIDS+=($!)
"${SEQDET}" serve --db="${SMOKE_DIR}/shards/shard-000" \
    --port=$((PORT_BASE + 1)) > /dev/null & SMOKE_PIDS+=($!)
"${SEQDET}" serve --db="${SMOKE_DIR}/shards/shard-001" \
    --port=$((PORT_BASE + 2)) > /dev/null & SMOKE_PIDS+=($!)
"${SEQDET}" route --shards=$((PORT_BASE + 1)),$((PORT_BASE + 2)) \
    --port=$((PORT_BASE + 3)) > /dev/null & SMOKE_PIDS+=($!)
for attempt in $(seq 1 50); do
  if "${SEQDET}" query --port=$((PORT_BASE + 3)) --q="act_0 -> act_1" \
      > /dev/null 2>&1; then
    break
  fi
  if [[ "${attempt}" == "50" ]]; then
    echo "router smoke: cluster never became ready" >&2
    exit 1
  fi
  sleep 0.2
done
for q in "act_0 -> act_1" "act_1 -> act_2 -> act_0" \
         "act_0 (act_1|act_2)+ act_3" "response(act_0, act_1)" \
         "absence(act_2)"; do
  "${SEQDET}" query --port=$((PORT_BASE)) --q="${q}" \
      > "${SMOKE_DIR}/single.json"
  "${SEQDET}" query --port=$((PORT_BASE + 3)) --q="${q}" \
      > "${SMOKE_DIR}/routed.json"
  if ! cmp -s "${SMOKE_DIR}/single.json" "${SMOKE_DIR}/routed.json"; then
    echo "router smoke: routed response diverged for '${q}'" >&2
    diff "${SMOKE_DIR}/single.json" "${SMOKE_DIR}/routed.json" >&2 || true
    exit 1
  fi
done
cleanup_smoke_pids
SMOKE_PIDS=()
echo "=== SMOKE: clean ==="

if [[ "${SEQDET_SKIP_TSAN:-0}" != "1" ]]; then
  "${REPO_DIR}/tools/check_tsan.sh" "${TSAN_DIR}"
fi

if [[ "${SEQDET_RUN_BENCH:-0}" == "1" ]]; then
  echo "=== BENCH: check_bench.sh ==="
  "${REPO_DIR}/tools/check_bench.sh"
fi
echo "=== all sanitizer checks clean ==="
