#!/usr/bin/env bash
# Static-analysis gate, the compile-time sibling of check_all.sh /
# check_tsan.sh. One command runs:
#
#   1. The Clang Thread Safety build: SEQDET_THREAD_SAFETY=ON compiles
#      everything with -Wthread-safety -Werror=thread-safety, so any access
#      to a GUARDED_BY field without its lock is a compile error.
#   2. Negative-compile probes (tools/static_probes/): a deliberate lock
#      violation and a deliberate dropped Status must FAIL to compile —
#      proof the gates are live, not decorative.
#   3. clang-tidy over src/ tests/ bench/ tools/ with the curated
#      .clang-tidy (WarningsAsErrors, so any unsuppressed finding fails).
#   4. A grep gate: no raw std::mutex / std::shared_mutex /
#      std::condition_variable / lock_guard / unique_lock / shared_lock /
#      scoped_lock may appear in src/ outside common/sync.h.
#   5. The deadlock-freedom build: SEQDET_THREAD_SAFETY_NEGATIVE=ON adds
#      -Wthread-safety-negative (every acquisition must declare
#      REQUIRES(!mu)) and -Wthread-safety-beta (ACQUIRED_BEFORE ordering)
#      as errors — the negative-capability discipline of DESIGN.md §16.
#   6. seqdet-lint (tools/seqdet_lint.sh): the source-level rules the
#      annotation language cannot express — blocking calls under a held
#      lock, raw ::close outside common/unique_fd.h, unjustified
#      IgnoreStatus, unbounded hot-path loops, lock_order.map violations.
#
# Clang-only steps are skipped WITH A LOUD WARNING when clang/clang-tidy is
# not installed; the compiler-agnostic steps (nodiscard probe, grep gate,
# seqdet-lint's python engine) always run, so the script is useful on any
# machine and strict where the tools exist.
#
# Usage: tools/check_static.sh [--negative] [build-dir]
#   --negative   run only the negative probes: the negative-compile files
#                of steps 1/5 (tools/static_probes/*.cc must FAIL to
#                compile) and the seqdet-lint probe harness
#                (tools/seqdet_lint.sh --probes)
#   build-dir    defaults to build-static
set -uo pipefail

REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
NEGATIVE_ONLY=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --negative) NEGATIVE_ONLY=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-${REPO_DIR}/build-static}"

find_tool() {
  local c
  for c in "$@"; do
    if command -v "$c" >/dev/null 2>&1; then
      command -v "$c"
      return 0
    fi
  done
  return 1
}

CLANGXX="$(find_tool clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
  clang++-17 clang++-16 clang++-15 clang++-14 clang++-13 || true)"
CLANG_TIDY="$(find_tool clang-tidy clang-tidy-21 clang-tidy-20 \
  clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 \
  clang-tidy-14 clang-tidy-13 || true)"
HOST_CXX="${CXX:-c++}"

warn_skip() {
  echo "!!!" >&2
  echo "!!! WARNING: $1" >&2
  echo "!!! This gate is NOT being enforced on this machine." >&2
  echo "!!!" >&2
}

failed=0
fail() {
  echo "FAIL: $1" >&2
  failed=1
}

# --- Step 2: negative-compile probes (runs in both modes) -----------------
run_negative_probes() {
  echo "=== negative probe: dropped Status must not compile ==="
  if "${HOST_CXX}" -std=c++20 -I "${REPO_DIR}/src" -Werror=unused-result \
      -fsyntax-only "${REPO_DIR}/tools/static_probes/nodiscard_negative.cc" \
      2>/dev/null; then
    fail "nodiscard_negative.cc compiled — the [[nodiscard]] gate is dead"
  else
    echo "ok: rejected as expected (${HOST_CXX})"
  fi

  echo "=== negative probe: unlocked GUARDED_BY access must not compile ==="
  if [[ -n "${CLANGXX}" ]]; then
    if "${CLANGXX}" -std=c++20 -I "${REPO_DIR}/src" -Wthread-safety \
        -Werror=thread-safety -fsyntax-only \
        "${REPO_DIR}/tools/static_probes/thread_safety_negative.cc" \
        2>/dev/null; then
      fail "thread_safety_negative.cc compiled — the thread-safety gate is dead"
    else
      echo "ok: rejected as expected (${CLANGXX})"
    fi
    # The probe must fail for the RIGHT reason: it must be valid C++ once
    # the analysis is off (otherwise any syntax error would "pass").
    if ! "${CLANGXX}" -std=c++20 -I "${REPO_DIR}/src" -fsyntax-only \
        "${REPO_DIR}/tools/static_probes/thread_safety_negative.cc" \
        2>/dev/null; then
      fail "thread_safety_negative.cc is not valid C++ without the analysis"
    fi
  else
    warn_skip "clang++ not found; cannot prove the -Werror=thread-safety gate"
  fi

  # The step-5 flag set: negative capabilities + acquired_before ordering.
  NEGATIVE_FLAGS=(-Wthread-safety -Wthread-safety-negative
    -Wthread-safety-beta -Werror=thread-safety
    -Werror=thread-safety-negative -Werror=thread-safety-beta)
  for probe in negative_capability_negative lock_order_negative; do
    echo "=== negative probe: ${probe}.cc must not compile ==="
    if [[ -n "${CLANGXX}" ]]; then
      if "${CLANGXX}" -std=c++20 -I "${REPO_DIR}/src" \
          "${NEGATIVE_FLAGS[@]}" -fsyntax-only \
          "${REPO_DIR}/tools/static_probes/${probe}.cc" 2>/dev/null; then
        fail "${probe}.cc compiled — the deadlock-freedom gate is dead"
      else
        echo "ok: rejected as expected (${CLANGXX})"
      fi
      if ! "${CLANGXX}" -std=c++20 -I "${REPO_DIR}/src" -fsyntax-only \
          "${REPO_DIR}/tools/static_probes/${probe}.cc" 2>/dev/null; then
        fail "${probe}.cc is not valid C++ without the analysis"
      fi
    else
      warn_skip "clang++ not found; cannot prove the deadlock-freedom gate"
    fi
  done

  echo "=== seqdet-lint probe harness ==="
  if ! "${REPO_DIR}/tools/seqdet_lint.sh" --probes; then
    fail "seqdet-lint probes (see above) — a lint rule is dead"
  fi
}

run_negative_probes
if [[ "${NEGATIVE_ONLY}" == "1" ]]; then
  [[ "${failed}" == "0" ]] && echo "=== negative probes clean ==="
  exit "${failed}"
fi

# --- Step 4: grep gate (cheap; run before the builds) ---------------------
echo "=== grep gate: raw std sync primitives outside common/sync.h ==="
raw_sync=$(grep -rnE \
  'std::(mutex|shared_mutex|recursive_mutex|condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock)' \
  "${REPO_DIR}/src/" | grep -v 'common/sync\.h' || true)
if [[ -n "${raw_sync}" ]]; then
  echo "${raw_sync}" >&2
  fail "raw std synchronization primitives in src/ — use common/sync.h"
else
  echo "ok: none"
fi

# --- Step 1: thread-safety build ------------------------------------------
if [[ -n "${CLANGXX}" ]]; then
  echo "=== SEQDET_THREAD_SAFETY build (${CLANGXX}) ==="
  if ! cmake -B "${BUILD_DIR}" -S "${REPO_DIR}" \
      -DCMAKE_CXX_COMPILER="${CLANGXX}" -DSEQDET_THREAD_SAFETY=ON; then
    fail "cmake configure failed for the thread-safety build"
  elif ! cmake --build "${BUILD_DIR}" -j"$(nproc)"; then
    fail "-Werror=thread-safety build failed (see diagnostics above)"
  else
    echo "ok: clean -Werror=thread-safety build"
  fi
else
  warn_skip "clang++ not found; skipping the -Werror=thread-safety build"
fi

# --- Step 5: deadlock-freedom build ---------------------------------------
if [[ -n "${CLANGXX}" ]]; then
  echo "=== SEQDET_THREAD_SAFETY_NEGATIVE build (${CLANGXX}) ==="
  NEG_BUILD_DIR="${BUILD_DIR}-negative"
  if ! cmake -B "${NEG_BUILD_DIR}" -S "${REPO_DIR}" \
      -DCMAKE_CXX_COMPILER="${CLANGXX}" \
      -DSEQDET_THREAD_SAFETY_NEGATIVE=ON; then
    fail "cmake configure failed for the deadlock-freedom build"
  elif ! cmake --build "${NEG_BUILD_DIR}" -j"$(nproc)"; then
    fail "-Werror=thread-safety-negative build failed (see above)"
  else
    echo "ok: clean negative-capability + lock-order build"
  fi
else
  warn_skip "clang++ not found; skipping the deadlock-freedom build"
fi

# --- Step 6: seqdet-lint ---------------------------------------------------
echo "=== seqdet-lint (tools/seqdet_lint.sh) ==="
if ! "${REPO_DIR}/tools/seqdet_lint.sh"; then
  fail "seqdet-lint violations (see above)"
fi

# --- Step 3: clang-tidy ----------------------------------------------------
if [[ -n "${CLANG_TIDY}" ]]; then
  # Prefer the clang build's compile commands (exact flags); fall back to
  # any configured build dir (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
  TIDY_DB=""
  for d in "${BUILD_DIR}" "${REPO_DIR}/build"; do
    if [[ -f "${d}/compile_commands.json" ]]; then
      TIDY_DB="${d}"
      break
    fi
  done
  if [[ -z "${TIDY_DB}" ]]; then
    cmake -B "${BUILD_DIR}" -S "${REPO_DIR}" >/dev/null && \
      TIDY_DB="${BUILD_DIR}"
  fi
  echo "=== clang-tidy (${CLANG_TIDY}, -p ${TIDY_DB}) ==="
  mapfile -t tidy_files < <(cd "${REPO_DIR}" && \
    find src tests bench tools -name '*.cc' -o -name '*.cpp' | sort)
  if ! (cd "${REPO_DIR}" && "${CLANG_TIDY}" -p "${TIDY_DB}" --quiet \
      "${tidy_files[@]}"); then
    fail "clang-tidy reported findings (every finding is an error)"
  else
    echo "ok: clang-tidy clean"
  fi
else
  warn_skip "clang-tidy not found; skipping the lint pass"
fi

if [[ "${failed}" == "0" ]]; then
  echo "=== static gate clean ==="
fi
exit "${failed}"
