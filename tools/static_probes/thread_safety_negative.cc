// Negative-compile probe for the Clang Thread Safety gate.
//
// This file DELIBERATELY violates the lock discipline: value_ is
// GUARDED_BY(mu_) but Increment() touches it without holding the lock.
// tools/check_static.sh --negative compiles it with -Wthread-safety
// -Werror=thread-safety and asserts the compile FAILS — proving the gate
// rejects real violations instead of being decorative. Never linked into
// any target.

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG (intentional): mu_ not held.
  }

  int Read() {
    seqdet::MutexLock lock(mu_);
    return value_;
  }

 private:
  seqdet::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Read();
}
