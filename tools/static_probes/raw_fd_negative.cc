// Negative probe for seqdet-lint rule R2 (raw-fd).
//
// This file DELIBERATELY calls ::close() on a naked descriptor.
// common/unique_fd.h is the single sanctioned home of ::close() in the
// tree — every other site must own its descriptor with seqdet::UniqueFd,
// so error paths and early returns can never leak or double-close an fd.
// tools/seqdet_lint.sh --probes runs the lint over this file and asserts
// it FAILS with R2. Valid C++, never linked into any target.

#include <fcntl.h>
#include <unistd.h>

int main() {
  const int fd = ::open("/dev/null", O_RDONLY);
  if (fd < 0) return 1;
  // BUG (intentional): raw close; should be `seqdet::UniqueFd owned(fd);`.
  ::close(fd);
  return 0;
}
