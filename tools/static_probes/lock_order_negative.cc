// Negative probe for the lock-ordering gate — checked TWO ways:
//
//   1. Clang: a_ is declared ACQUIRED_BEFORE(b_), but ReversedAcquire()
//      takes b_ first. check_static.sh --negative compiles this file
//      with -Wthread-safety-beta (the acquired_before/acquired_after
//      analysis) -Werror and asserts the compile FAILS.
//   2. seqdet-lint rule R5: tools/lint_rules/lock_order.map declares the
//      probe_outer (a_) -> probe_inner (b_) edge for this file, so the
//      reversed textual nesting below must trip the python engine too.
//      tools/seqdet_lint.sh --probes asserts exactly that.
//
// One seeded deadlock shape, two independent detectors — whichever of
// the clang build or the portable lint runs on a machine, the reversed
// acquisition is rejected. Valid C++ without the analysis (the harness
// checks that as well); never linked into any target.

#include "common/sync.h"

namespace {

class Ordered {
 public:
  int ReversedAcquire() REQUIRES(!a_, !b_) {
    seqdet::MutexLock lock_b(b_);
    // BUG (intentional): a_ must be acquired before b_, never under it.
    seqdet::MutexLock lock_a(a_);
    return ++value_;
  }

 private:
  seqdet::Mutex a_ ACQUIRED_BEFORE(b_);
  seqdet::Mutex b_;
  int value_ GUARDED_BY(a_) = 0;
};

}  // namespace

int main() {
  Ordered o;
  return o.ReversedAcquire();
}
