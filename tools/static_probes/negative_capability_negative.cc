// Negative probe for the negative-capability gate (check_static.sh
// step 5: -Wthread-safety-negative -Werror).
//
// This file DELIBERATELY violates the discipline twice, so the probe
// fails under the negative-capability flag set regardless of how strict
// the installed clang's negative analysis is:
//
//   * Caller() acquires mu_ without declaring REQUIRES(!mu_) — the
//     negative-capability rule every locking method in the tree now
//     follows (-Wthread-safety-negative).
//   * Caller() then calls Reenter(), which REQUIRES(!mu_), while mu_ is
//     held — a self-deadlock shape plain -Wthread-safety already
//     rejects.
//
// check_static.sh --negative compiles this with the step-5 flags and
// asserts the compile FAILS — proof the deadlock-freedom gate is live.
// Valid C++ without the analysis; never linked into any target.

#include "common/sync.h"

namespace {

class Plain {
 public:
  // BUG (intentional): acquires mu_ but does not declare REQUIRES(!mu_).
  int Caller() {
    seqdet::MutexLock lock(mu_);
    return Reenter();  // BUG (intentional): mu_ is held here.
  }

  int Reenter() REQUIRES(!mu_) {
    seqdet::MutexLock lock(mu_);
    return ++value_;
  }

 private:
  seqdet::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Plain p;
  return p.Caller();
}
