// Negative probe for seqdet-lint rule R3 (ignored-status).
//
// This file DELIBERATELY drops a Status through IgnoreStatus() without
// the same-line // comment saying why the drop is safe. IgnoreStatus()
// exists so best-effort paths can discard [[nodiscard]] results visibly,
// but a bare call says nothing — the discipline requires each use to
// carry its justification (see src/query/pattern_parser.cc for the
// compliant form). tools/seqdet_lint.sh --probes runs the lint over this
// file and asserts it FAILS with R3. Valid C++, never linked into any
// target.

#include "common/status.h"

namespace {

seqdet::Status BestEffortCleanup() { return seqdet::Status::OK(); }

}  // namespace

int main() {
  seqdet::IgnoreStatus(BestEffortCleanup());
  return 0;
}
