// Negative probe for seqdet-lint rule R4 (unbounded-loop).
//
// This file DELIBERATELY spins in a `while (true)` whose body has no
// break, no return, and no deadline check. On the query hot paths
// (src/query/, src/server/) every unbounded loop must either exit or
// consult a Deadline each stride — that is what makes the 504-within-
// one-chunk guarantee of DESIGN.md §14 checkable at the source level.
// tools/seqdet_lint.sh --probes runs the lint over this file (with
// --all-rules, since probes live outside the scoped paths) and asserts
// it FAILS with R4. Valid C++, never linked into any target.

#include <atomic>

namespace {

std::atomic<unsigned> spins{0};

void SpinForever() {
  // BUG (intentional): no exit, no Expired() stride check.
  while (true) {
    spins.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

int main() {
  SpinForever();
  return 0;
}
