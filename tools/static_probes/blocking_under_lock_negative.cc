// Negative probe for seqdet-lint rule R1 (blocking-under-lock).
//
// This file DELIBERATELY issues a blocking syscall inside a MutexLock
// scope: exactly the shape the discipline forbids (the lock would be
// held for the full kernel-side wait, serializing every other thread
// behind one slow peer — the bug class fixed in HttpServer::AcceptLoop,
// which used to close() refused sockets under conns_mu_).
// tools/seqdet_lint.sh --probes runs the lint over this file and asserts
// it FAILS with R1 — proving the rule rejects real violations instead of
// being decorative. It is valid C++ (the probe harness also compiles it
// with -fsyntax-only) and never linked into any target.

#include <sys/socket.h>

#include "common/sync.h"

namespace {

class Sender {
 public:
  void Broadcast(const char* data, size_t len) {
    seqdet::MutexLock lock(mu_);  // protects fd_
    // BUG (intentional): ::send can block for the peer's receive window
    // while mu_ is held.
    (void)::send(fd_, data, len, 0);
  }

 private:
  seqdet::Mutex mu_;
  int fd_ GUARDED_BY(mu_) = -1;
};

}  // namespace

int main() {
  Sender s;
  s.Broadcast("x", 1);
  return 0;
}
