// Negative-compile probe for the [[nodiscard]] Status/Result gate.
//
// This file DELIBERATELY drops a returned Status and a returned Result.
// tools/check_static.sh compiles it with -Werror=unused-result (works on
// GCC and Clang alike) and asserts the compile FAILS — proving dropped
// statuses cannot slip through the build. Never linked into any target.

#include "common/result.h"
#include "common/status.h"

namespace {

seqdet::Status MightFail() { return seqdet::Status::OK(); }

seqdet::Result<int> MightFailWithValue() { return 42; }

}  // namespace

int main() {
  MightFail();           // BUG (intentional): Status silently dropped.
  MightFailWithValue();  // BUG (intentional): Result silently dropped.
  return 0;
}
