#!/usr/bin/env python3
"""seqdet-lint: source-level rules for the blocking/deadline discipline.

The always-available reference implementation of the lint layer described
in DESIGN.md §16. The Clang negative-capability build (check_static.sh
step 5) proves lock *annotations* are consistent; this engine enforces the
rules the annotation language cannot express:

  R1 blocking-under-lock   a SEQDET_BLOCKING-shaped call (raw socket/file
                           syscall, sleep, ParallelFor, WaitIdle, ...)
                           while a MutexLock/WriterLock/ReaderLock is
                           live in the enclosing scope. CondVar waits are
                           exempt when they wait on the (single) held
                           lock — waiting releases it — but flagged when
                           a *different* lock is also held.
  R2 raw-fd                any `::close(` outside common/unique_fd.h,
                           the single sanctioned home of close().
  R3 ignored-status        `IgnoreStatus(...)` without a same-line `//`
                           comment justifying the drop.
  R4 unbounded-loop        `while (true)` / `for (;;)` on the query hot
                           paths (src/query/, src/server/) whose body has
                           no break/return/deadline check.
  R5 lock-order            nested lock acquisition inside one function
                           that is not an allowed edge of
                           tools/lint_rules/lock_order.map (reversed,
                           recursive, or unmapped). Cross-function
                           nesting is the clang-query layer's job.

The engine is deliberately textual (brace-depth scope tracking, not a
real AST): it runs anywhere python3 runs, with zero dependencies, and the
repo's style (one statement per line, K&R braces, clang-format enforced)
makes the approximation tight. The clang-query rules in this directory
are the precise layer, run by tools/seqdet_lint.sh only where clang-query
exists.

Suppressions are explicit and carry a reason:

    // seqdet-lint: allow-blocking-under-lock(<why>)
    // seqdet-lint: allow-unbounded-loop(<why>)
    // seqdet-lint: allow-lock-order(<why>)

on the offending line or the line above. R2 and R3 have no suppression
tag on purpose: use UniqueFd, or write the comment.

Usage:
    seqdet_lint.py [--root DIR] [--all-rules] [--map FILE] [files...]

With no files, scans the default tree (src/ tools/ tests/ bench/ minus
static_probes). --all-rules drops per-rule path scoping — used by the
probe harness so a probe file in tools/static_probes/ exercises rules
that normally apply only to src/. Exit 0 clean, 1 violations, 2 usage.
"""

import argparse
import fnmatch
import os
import re
import sys

# --------------------------------------------------------------------------
# Rule registry: what counts as blocking. Mirrors the SEQDET_BLOCKING
# annotations in the headers (common/sync.h, common/thread_pool.h,
# server/http_client.h, ...) — the python layer cannot see attributes, so
# the distinctive call shapes are listed here.
BLOCKING_CALLS = [
    # Raw syscalls that can block on the network or disk.
    r"::accept\s*\(",
    r"::connect\s*\(",
    r"::poll\s*\(",
    r"::send\s*\(",
    r"::recv\s*\(",
    r"::read\s*\(",
    r"::write\s*\(",
    r"::pread\s*\(",
    r"::open\s*\(",
    r"::fsync\s*\(",
    r"::fdatasync\s*\(",
    # Sleeps.
    r"\bsleep_for\s*\(",
    r"\bsleep_until\s*\(",
    # Annotated SEQDET_BLOCKING methods with distinctive names.
    r"[.>]\s*ParallelFor\s*\(",
    r"[.>]\s*WaitIdle\s*\(",
    r"[.>]\s*Scatter\s*\(",
]
BLOCKING_RE = re.compile("|".join(BLOCKING_CALLS))

# CondVar waits: blocking, but they release their own mutex. Capture the
# mutex argument so R1 can exempt a wait on the held lock itself.
CONDVAR_WAIT_RE = re.compile(r"\b\w+\s*\.\s*Wait(?:Until|For)?\s*\(\s*([^,)]+)")

# Lock guard declarations: `MutexLock lock(mu_);` / `WriterLock l(mu_);`
# (optionally namespace-qualified).
LOCK_DECL_RE = re.compile(
    r"\b(?:seqdet::)?(MutexLock|WriterLock|ReaderLock)\s+(\w+)\s*[({]\s*([^);}]+?)\s*[)}]"
)
# Mid-scope toggling on a tracked guard: lock.Unlock(); ... lock.Lock();
GUARD_TOGGLE_RE = re.compile(r"\b(\w+)\s*\.\s*(Unlock|Lock)\s*\(\s*\)")

RAW_CLOSE_RE = re.compile(r"::close\s*\(")
IGNORE_STATUS_RE = re.compile(r"\bIgnoreStatus\s*\(")
UNBOUNDED_LOOP_RE = re.compile(r"\bwhile\s*\(\s*true\s*\)|\bfor\s*\(\s*;\s*;\s*\)")
LOOP_BOUND_RE = re.compile(
    r"\bbreak\b|\breturn\b|\bthrow\b|\bExpired\s*\(|\bdeadline\b|\bDeadline\b"
)

ALLOW_TAG_RE = re.compile(r"seqdet-lint:\s*allow-([a-z-]+)\s*\(")

# Files exempt from specific rules by role.
R2_EXEMPT_BASENAMES = {"unique_fd.h"}
R3_EXEMPT_BASENAMES = {"status.h", "result.h"}  # the definitions themselves


def strip_strings_and_comments(line, in_block_comment):
    """Returns (code, comment, still_in_block_comment).

    `code` is the line with string/char literals blanked and comments
    removed; `comment` is the concatenated comment text (where the
    suppression tags live).
    """
    code = []
    comment = []
    i, n = 0, len(line)
    state = "block" if in_block_comment else "code"
    quote = ""
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                comment.append(line[i:])
                break
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c in "\"'":
                state = "string"
                quote = c
                code.append(c)
                i += 1
                continue
            code.append(c)
            i += 1
        elif state == "string":
            if c == "\\":
                code.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                code.append(c)
            else:
                code.append(" ")
            i += 1
        else:  # block comment
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            comment.append(c)
            i += 1
    return "".join(code), "".join(comment), state == "block"


def normalize_expr(expr):
    return re.sub(r"\s+", "", expr)


class LockOrderMap:
    """tools/lint_rules/lock_order.map: node + edge declarations.

    Format (one declaration per line, `#` comments):
        node <name> <file-glob> <mutex-expr-regex>
        edge <outer-node> <inner-node>
    A mutex expression resolves to the first node whose glob matches the
    file (repo-relative) and whose regex fully matches the normalized
    expression. Edges are closed transitively.
    """

    def __init__(self):
        self.nodes = []  # (name, glob, compiled-regex)
        self.edges = set()  # (outer, inner)

    @classmethod
    def load(cls, path):
        m = cls()
        with open(path, encoding="utf-8") as f:
            for ln, raw in enumerate(f, 1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split(None, 3)
                if parts[0] == "node" and len(parts) == 4:
                    m.nodes.append((parts[1], parts[2], re.compile(parts[3] + r"\Z")))
                elif parts[0] == "edge" and len(parts) == 3:
                    m.edges.add((parts[1], parts[2]))
                else:
                    raise ValueError(f"{path}:{ln}: bad lock_order.map line: {raw!r}")
        # Transitive closure (the map is tiny; cubic is fine).
        changed = True
        while changed:
            changed = False
            for a, b in list(m.edges):
                for c, d in list(m.edges):
                    if b == c and (a, d) not in m.edges:
                        m.edges.add((a, d))
                        changed = True
        return m

    def resolve(self, rel_path, expr):
        expr = normalize_expr(expr)
        for name, glob, rx in self.nodes:
            if fnmatch.fnmatch(rel_path, glob) and rx.match(expr):
                return name
        return None

    def allows(self, outer, inner):
        return (outer, inner) in self.edges


class Lock:
    __slots__ = ("kind", "name", "expr", "depth", "line", "active")

    def __init__(self, kind, name, expr, depth, line):
        self.kind = kind
        self.name = name
        self.expr = normalize_expr(expr)
        self.depth = depth
        self.line = line
        self.active = True


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rule_applies(rule, rel_path, all_rules):
    """Per-rule path scoping (dropped under --all-rules)."""
    base = os.path.basename(rel_path)
    if rule == "R2":
        return base not in R2_EXEMPT_BASENAMES
    if rule == "R3":
        return base not in R3_EXEMPT_BASENAMES
    if all_rules:
        return True
    if rule == "R1" or rule == "R5":
        return rel_path.startswith(("src/", "tools/"))
    if rule == "R4":
        return rel_path.startswith(("src/query/", "src/server/"))
    return True


def lint_file(path, rel_path, order_map, all_rules):
    violations = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.readlines()
    except OSError as e:
        return [Violation(rel_path, 0, "IO", str(e))]

    # Pass 1: strip strings/comments, collect suppression tags.
    code_lines = [""]  # 1-indexed
    allow = {}  # line -> set of tags; a tag covers its line and the next
    in_block = False
    for ln, raw in enumerate(raw_lines, 1):
        code, comment, in_block = strip_strings_and_comments(raw, in_block)
        code_lines.append(code)
        for m in ALLOW_TAG_RE.finditer(comment):
            allow.setdefault(ln, set()).add(m.group(1))
            allow.setdefault(ln + 1, set()).add(m.group(1))

    def allowed(ln, tag):
        return tag in allow.get(ln, set())

    # Pass 2: position-ordered scan with brace-depth lock tracking. Every
    # brace, guard declaration, Unlock()/Lock() toggle, and blocking call
    # is an event processed in source order, so `} else {` (net depth 0,
    # but the `}` closes the if-branch's guard) and same-line sequences
    # are handled exactly.
    depth = 0
    locks = []  # stack of Lock

    def check_nested(lock, ln):
        for outer in locks:
            if not outer.active or allowed(ln, "lock-order"):
                continue
            o = order_map.resolve(rel_path, outer.expr)
            i = order_map.resolve(rel_path, lock.expr)
            if o is not None and o == i:
                violations.append(Violation(
                    rel_path, ln, "R5-lock-order",
                    f"recursive acquisition of '{lock.expr}' "
                    f"(already held since line {outer.line})"))
            elif o is None or i is None or not order_map.allows(o, i):
                held = o or f"<unmapped:{outer.expr}>"
                want = i or f"<unmapped:{lock.expr}>"
                violations.append(Violation(
                    rel_path, ln, "R5-lock-order",
                    f"nested acquisition {held} -> {want} is not an "
                    f"edge of lock_order.map ('{lock.expr}' under "
                    f"'{outer.expr}' held since line {outer.line})"))

    for ln in range(1, len(code_lines)):
        code = code_lines[ln]

        events = []  # (column, order, kind, payload)
        for col, c in enumerate(code):
            if c == "{":
                events.append((col, 0, "open", None))
            elif c == "}":
                events.append((col, 0, "close", None))
        for m in LOCK_DECL_RE.finditer(code):
            events.append((m.start(), 1, "decl", m))
        for m in GUARD_TOGGLE_RE.finditer(code):
            events.append((m.start(), 1, "toggle", m))
        if rule_applies("R1", rel_path, all_rules):
            for m in BLOCKING_RE.finditer(code):
                events.append((m.start(), 2, "blocking", m))
            for m in CONDVAR_WAIT_RE.finditer(code):
                events.append((m.start(), 2, "wait", m))
        events.sort(key=lambda e: (e[0], e[1]))

        for _, _, kind, m in events:
            if kind == "open":
                depth += 1
            elif kind == "close":
                depth = max(0, depth - 1)
                locks = [l for l in locks if l.depth <= depth]
            elif kind == "decl":
                lock = Lock(m.group(1), m.group(2), m.group(3), depth, ln)
                if rule_applies("R5", rel_path, all_rules) and order_map:
                    check_nested(lock, ln)
                locks.append(lock)
            elif kind == "toggle":
                for lock in reversed(locks):
                    if lock.name == m.group(1):
                        lock.active = m.group(2) == "Lock"
                        break
            elif kind == "blocking":
                active = [l for l in locks if l.active]
                if active and not allowed(ln, "blocking-under-lock"):
                    holder = active[-1]
                    violations.append(Violation(
                        rel_path, ln, "R1-blocking-under-lock",
                        f"blocking call '{m.group(0).strip()}' while "
                        f"'{holder.expr}' is held ({holder.kind} at line "
                        f"{holder.line}); do the blocking work outside "
                        f"the lock scope"))
            elif kind == "wait":
                if BLOCKING_RE.search(m.group(0)):
                    continue  # e.g. WaitIdle( already reported above
                wait_mu = normalize_expr(m.group(1))
                # A guard on the waited mutex is released by the wait
                # itself; only *other* live locks make this a deadlock
                # shape.
                others = [l for l in locks if l.active and l.expr != wait_mu]
                if others and not allowed(ln, "blocking-under-lock"):
                    o = others[-1]
                    violations.append(Violation(
                        rel_path, ln, "R1-blocking-under-lock",
                        f"condition wait on '{wait_mu}' while a different "
                        f"lock '{o.expr}' is held ({o.kind} at line "
                        f"{o.line}); the wait releases only its own "
                        f"mutex"))

        # R2: raw ::close outside unique_fd.h.
        if rule_applies("R2", rel_path, all_rules) and RAW_CLOSE_RE.search(code):
            violations.append(Violation(
                rel_path, ln, "R2-raw-fd",
                "raw ::close(); own the fd with seqdet::UniqueFd "
                "(common/unique_fd.h) instead"))

        # R3: IgnoreStatus without a same-line justification.
        if rule_applies("R3", rel_path, all_rules) and IGNORE_STATUS_RE.search(code):
            raw = raw_lines[ln - 1]
            comment_pos = raw.find("//")
            if comment_pos < 0 or not raw[comment_pos + 2:].strip():
                violations.append(Violation(
                    rel_path, ln, "R3-ignored-status",
                    "IgnoreStatus() without a same-line // comment saying "
                    "why dropping the error is safe"))

        # R4: unbounded loop on a query hot path.
        if rule_applies("R4", rel_path, all_rules):
            lm = UNBOUNDED_LOOP_RE.search(code)
            if lm and not allowed(ln, "unbounded-loop"):
                if not loop_body_is_bounded(code_lines, ln, lm.end()):
                    violations.append(Violation(
                        rel_path, ln, "R4-unbounded-loop",
                        "unbounded loop with no break/return/deadline "
                        "check in its body on a query hot path"))

        # Close scopes: update depth, pop dead guards.
        depth += code.count("{") - code.count("}")
        if depth < 0:
            depth = 0
        locks = [l for l in locks if l.depth <= depth]

    return violations


def loop_body_is_bounded(code_lines, start_ln, start_col):
    """Scans the loop body (balanced braces from the loop header) for an
    exit: break, return, throw, or a deadline check."""
    depth = 0
    entered = False
    for ln in range(start_ln, len(code_lines)):
        code = code_lines[ln] if ln != start_ln else code_lines[ln][start_col:]
        for c in code:
            if c == "{":
                depth += 1
                entered = True
            elif c == "}":
                depth -= 1
                if entered and depth <= 0:
                    return False  # body closed, no exit found
        if entered and depth > 0 and LOOP_BOUND_RE.search(code):
            return True
        if not entered and ln > start_ln + 2:
            return True  # brace-less loop body (single statement): not ours
    return True  # unterminated (EOF mid-scan): don't guess


def default_files(root):
    files = []
    for top in ("src", "tools", "tests", "bench"):
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, top)):
            if "static_probes" in dirpath:
                continue
            for fn in sorted(filenames):
                if fn.endswith((".cc", ".cpp", ".h", ".hpp")):
                    files.append(os.path.join(dirpath, fn))
    return files


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--all-rules", action="store_true",
                    help="drop per-rule path scoping (probe harness mode)")
    ap.add_argument("--map", dest="map_path", default=None,
                    help="lock-order map (default: lock_order.map beside "
                         "this script)")
    ap.add_argument("files", nargs="*")
    args = ap.parse_args(argv)

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.join(here, "..", ".."))
    map_path = args.map_path or os.path.join(here, "lock_order.map")
    order_map = None
    if os.path.exists(map_path):
        try:
            order_map = LockOrderMap.load(map_path)
        except ValueError as e:
            print(f"seqdet-lint: {e}", file=sys.stderr)
            return 2

    files = [os.path.abspath(f) for f in args.files] or default_files(root)
    violations = []
    for path in files:
        rel = os.path.relpath(path, root)
        violations.extend(lint_file(path, rel, order_map, args.all_rules))

    for v in violations:
        print(v)
    if violations:
        print(f"seqdet-lint: {len(violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
