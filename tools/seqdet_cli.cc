// seqdet — command-line front end for the sequence-detection index.
//
//   seqdet generate --dataset=max_1000 --scale=0.1 --out=log.xes
//   seqdet index    --db=./idx --log=log.xes [--policy=STNM]
//                   [--method=indexing|parsing|state] [--threads=N]
//   seqdet info     --db=./idx
//   seqdet stats    --db=./idx --pattern=act_1,act_2,act_3
//   seqdet detect   --db=./idx --pattern=act_1,act_2 [--limit=20]
//                   [--max-gap=N] [--max-span=N]
//   seqdet continue --db=./idx --pattern=act_1,act_2
//                   [--mode=accurate|fast|hybrid] [--topk=5] [--limit=10]
//   seqdet prune    --db=./idx --trace=42
//
// The database directory persists across invocations; `index` is
// incremental (re-indexing the same file is a no-op thanks to LastChecked).

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"
#include "datagen/dataset_catalog.h"
#include "index/sequence_index.h"
#include "index/trace_shard.h"
#include "log/csv_io.h"
#include "log/log_statistics.h"
#include "log/xes_io.h"
#include "query/pattern_parser.h"
#include "query/query_processor.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "server/shard_router.h"
#include "storage/database.h"

using namespace seqdet;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "")
      const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    int64_t v;
    return it != flags.end() && ParseInt64(it->second, &v) ? v : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    double v;
    return it != flags.end() && ParseDouble(it->second, &v) ? v : fallback;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args.flags[arg.substr(2)] = "true";
    } else {
      args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: seqdet <command> [flags]\n"
      "  generate --dataset=<name>|--profile=bpi_2013 --out=<file>\n"
      "           [--scale=0..1]   write a synthetic log (.xes or .csv)\n"
      "  index    --db=<dir> --log=<file> [--policy=SC|STNM|STAM]\n"
      "           [--method=indexing|parsing|state] [--threads=N]\n"
      "           [--cache-bytes=N]  read-cache budget (0 disables)\n"
      "           [--lifecycle=complete]  keep only matching XES events\n"
      "  info     --db=<dir> | --port=<n>  (--port asks a live server)\n"
      "  stats    --db=<dir> --pattern=a,b,c [--last-completion]\n"
      "  detect   --db=<dir> --pattern=a,b,c [--limit=N] [--max-gap=N]\n"
      "           [--max-span=N] [--query-threads=N]\n"
      "  query    --db=<dir> --q=<pattern> [--limit=N] [--query-threads=N]\n"
      "           or --port=<n> --q=<pattern> to GET /detect from a live\n"
      "           server or router and print the JSON response verbatim\n"
      "           pattern language: `a (b|c)+ !d e within 5m gap <= 30s`\n"
      "           (disjunction, Kleene+, negation, inclusive time windows;\n"
      "           \"->\" separators optional) and compliance templates\n"
      "           response(a,b) | precedence(a,b) | absence(a) whose\n"
      "           matches are the rule's violation witnesses\n"
      "  serve    --db=<dir> [--port=8391]   JSON-over-HTTP query service\n"
      "           [--http-threads=N]  worker pool size (default: cores)\n"
      "           [--query-threads=N]  intra-query execution pool: posting\n"
      "           prefetch, morselized joins, parallel continuation\n"
      "           verification (0|1 = serial engine, the default)\n"
      "           [--max-inflight=64]  admission limit; excess queries\n"
      "           are shed with 503 + Retry-After (0 disables)\n"
      "           [--request-deadline-ms=N]  default per-query budget;\n"
      "           long joins are cancelled with 504 (0 disables)\n"
      "           [--backlog=N] [--keepalive-max=100]\n"
      "           [--idle-timeout-ms=5000]\n"
      "           [--auto-fold]  background maintenance: fold fragmented\n"
      "           posting lists + compact statistics automatically\n"
      "           [--fold-interval-ms=500] [--fold-min-bytes=4194304]\n"
      "           [--fold-min-ops=16384] [--fold-rate-limit=BYTES/S]\n"
      "  shard-split --log=<file> --shards=N --out=<dir>\n"
      "           [--policy=SC|STNM|STAM] [--method=...] [--threads=N]\n"
      "           partition a log by trace hash into N per-shard index\n"
      "           directories <dir>/shard-000..N-1, each pre-interned with\n"
      "           the full activity dictionary (ids identical across\n"
      "           shards); serve each with `seqdet serve`, front them with\n"
      "           `seqdet route`\n"
      "  route    --shards=host:port,port,... [--port=8390]\n"
      "           scatter-gather router over sharded workers; /detect,\n"
      "           /stats, /continue answers are byte-identical to one\n"
      "           unsharded server\n"
      "           [--request-deadline-ms=2000]  default per-query budget\n"
      "           [--max-deadline-ms=600000] [--merge-margin-ms=50]\n"
      "           [--hedge-after-ms=250]  straggler hedging (0 disables)\n"
      "           [--connect-timeout-ms=250]\n"
      "           [--breaker-failures=3] [--breaker-cooldown-ms=1000]\n"
      "           [--allow-partial]  merge what arrived instead of 503\n"
      "           [--scatter-threads=N] [--http-threads=N]\n"
      "  continue --db=<dir> --pattern=a,b [--mode=accurate|fast|hybrid]\n"
      "           [--topk=K] [--limit=N] [--insert-at=I]\n"
      "           [--query-threads=N]\n"
      "  prune    --db=<dir> --trace=<id>\n"
      "  fold     --db=<dir>   maintenance: fold statistics deltas and\n"
      "           rewrite posting lists as sorted v2 blocks (v1 upgrade)\n"
      "  check    --db=<dir>   fsck: verify cross-table invariants\n"
      "datasets: ");
  for (const auto& name : datagen::DatasetNames()) {
    std::fprintf(stderr, "%s ", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<eventlog::EventLog> LoadLogFile(const Args& args,
                                       const std::string& path) {
  if (EndsWith(path, ".xes")) {
    eventlog::XesReadOptions options;
    options.lifecycle_filter = args.Get("lifecycle");
    return eventlog::ReadXesLogFile(path, options);
  }
  if (EndsWith(path, ".csv")) return eventlog::ReadCsvLogFile(path);
  return Status::InvalidArgument("log file must end in .xes or .csv: " +
                                 path);
}

Result<std::unique_ptr<index::SequenceIndex>> OpenIndex(
    const Args& args, storage::Database* db) {
  index::IndexOptions options;
  std::string policy = args.Get("policy", "STNM");
  if (!index::ParsePolicyName(policy, &options.policy)) {
    return Status::InvalidArgument("unknown policy: " + policy);
  }
  std::string method = args.Get("method", "indexing");
  if (method == "indexing") {
    options.method = index::ExtractionMethod::kIndexing;
  } else if (method == "parsing") {
    options.method = index::ExtractionMethod::kParsing;
  } else if (method == "state") {
    options.method = index::ExtractionMethod::kState;
  } else {
    return Status::InvalidArgument("unknown method: " + method);
  }
  options.num_threads = static_cast<size_t>(args.GetInt("threads", 0));
  options.cache_bytes = static_cast<size_t>(args.GetInt(
      "cache-bytes", static_cast<int64_t>(options.cache_bytes)));
  return index::SequenceIndex::Open(db, options);
}

/// Opens the index trying each policy until the persisted one matches.
/// Query commands shouldn't need --policy; the index knows what it is.
/// `maintenance` (optional) configures the background auto-fold service.
Result<std::unique_ptr<index::SequenceIndex>> OpenIndexAnyPolicy(
    storage::Database* db,
    const index::MaintenanceOptions* maintenance = nullptr) {
  // Refuse to conjure an index out of an empty directory: read-only
  // commands on a mistyped --db path should fail loudly, not create a
  // fresh STNM index there.
  if (db->GetTable("meta") == nullptr) {
    return Status::NotFound("no index found in " + db->dir() +
                            " (run `seqdet index` first)");
  }
  for (auto policy :
       {index::Policy::kSkipTillNextMatch, index::Policy::kStrictContiguity,
        index::Policy::kSkipTillAnyMatch}) {
    index::IndexOptions options;
    options.policy = policy;
    if (maintenance != nullptr) options.maintenance = *maintenance;
    auto opened = index::SequenceIndex::Open(db, options);
    if (opened.ok()) return opened;
    if (!opened.status().IsInvalidArgument()) return opened.status();
  }
  return Status::InvalidArgument("cannot determine the index's policy");
}

Result<query::Pattern> PatternFromFlag(const Args& args,
                                       const index::SequenceIndex& index) {
  std::string spec = args.Get("pattern");
  if (spec.empty()) {
    return Status::InvalidArgument("--pattern=a,b,c is required");
  }
  std::vector<std::string> names = Split(spec, ',');
  return query::Pattern::FromNames(index.dictionary(), names);
}

int CmdGenerate(const Args& args) {
  std::string out = args.Get("out");
  std::string dataset = args.Get("dataset", args.Get("profile"));
  if (out.empty() || dataset.empty()) return Usage();
  auto log = datagen::LoadDataset(dataset, args.GetDouble("scale", 1.0));
  if (!log.ok()) return Fail(log.status());
  Status write = EndsWith(out, ".csv")
                     ? eventlog::WriteCsvLogFile(*log, out)
                     : eventlog::WriteXesLogFile(*log, out);
  if (!write.ok()) return Fail(write);
  auto stats = eventlog::LogStatistics::Compute(*log);
  std::printf("%s\n", stats.SummaryRow(dataset).c_str());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdIndex(const Args& args) {
  std::string db_path = args.Get("db"), log_path = args.Get("log");
  if (db_path.empty() || log_path.empty()) return Usage();
  auto log = LoadLogFile(args, log_path);
  if (!log.ok()) return Fail(log.status());
  auto db = storage::Database::Open(db_path);
  if (!db.ok()) return Fail(db.status());
  auto index = OpenIndex(args, db->get());
  if (!index.ok()) return Fail(index.status());

  Stopwatch watch;
  auto stats = (*index)->Update(*log);
  if (!stats.ok()) return Fail(stats.status());
  Status flush = (*index)->Flush();
  if (!flush.ok()) return Fail(flush);
  std::printf(
      "indexed %zu traces / %zu events in %.2fs: %zu pair completions "
      "(%zu extracted, %zu deduplicated)\n",
      stats->traces_processed, (*log).num_events(), watch.ElapsedSeconds(),
      stats->pairs_indexed, stats->pairs_extracted,
      stats->pairs_extracted - stats->pairs_indexed);
  return 0;
}

int CmdInfo(const Args& args) {
  if (args.Has("port")) {
    // Live mode: ask a running `seqdet serve` for its /info — the only way
    // to see serving stats (per-route latency, sheds, in-flight) and the
    // cache/maintenance counters of the process actually serving traffic.
    server::HttpClient client(static_cast<uint16_t>(args.GetInt("port", 0)));
    auto response = client.Get("/info");
    if (!response.ok()) return Fail(response.status());
    if (response->status != 200) {
      return Fail(Status::IOError(StringPrintf(
          "/info returned HTTP %d: %s", response->status,
          response->body.c_str())));
    }
    std::printf("%s\n", response->body.c_str());
    return 0;
  }
  std::string db_path = args.Get("db");
  if (db_path.empty()) return Usage();
  auto db = storage::Database::Open(db_path);
  if (!db.ok()) return Fail(db.status());
  auto index = OpenIndexAnyPolicy(db->get());
  if (!index.ok()) return Fail(index.status());
  std::printf("policy:     %s\n", index::PolicyName((*index)->options().policy));
  std::printf("periods:    %zu\n", (*index)->num_periods());
  std::printf("activities: %zu\n", (*index)->dictionary().size());
  std::printf("postings:   format v%u\n", (*index)->posting_format());
  std::printf("segments:   format v%u\n", (*db)->segment_format());
  storage::TableSegmentStats seg = (*db)->GetSegmentStats();
  if (seg.num_segments > 0) {
    double ratio = seg.disk_bytes > 0
                       ? static_cast<double>(seg.logical_bytes) /
                             static_cast<double>(seg.disk_bytes)
                       : 0.0;
    std::printf("  %zu segment files (%zu v1, %zu v2), %zu blocks, "
                "%llu bytes on disk for %llu logical (%.2fx)\n",
                seg.num_segments, seg.v1_segments, seg.v2_segments,
                seg.num_blocks,
                static_cast<unsigned long long>(seg.disk_bytes),
                static_cast<unsigned long long>(seg.logical_bytes), ratio);
  }
  index::PostingCacheStats cache = (*index)->cache_stats();
  std::printf("read cache: %zu / %zu bytes in %zu entries "
              "(hits %llu, misses %llu, evictions %llu, invalidations %llu)\n",
              cache.bytes, cache.capacity_bytes, cache.entries,
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions),
              static_cast<unsigned long long>(cache.invalidations));
  auto frag = (*index)->PostingFragmentationStats();
  if (frag.ok()) {
    std::printf("fragmentation: %zu keys (%zu fragmented), %zu blocks, "
                "%llu value bytes (%llu in fragments, ratio %.3f)\n",
                frag->keys, frag->fragmented_keys, frag->blocks,
                static_cast<unsigned long long>(frag->value_bytes),
                static_cast<unsigned long long>(frag->fragment_bytes),
                frag->FragmentRatio());
  }
  index::PendingFoldLoad pending = (*index)->pending_fold_load();
  std::printf("pending fold load: %llu bytes / %llu append records "
              "(since open)\n",
              static_cast<unsigned long long>(pending.bytes),
              static_cast<unsigned long long>(pending.ops));
  std::printf("tables:\n");
  for (const auto& name : (*db)->TableNames()) {
    std::printf("  %-16s ~%zu entries\n", name.c_str(),
                (*db)->GetTable(name)->ApproximateEntryCount());
  }
  for (const auto& name : (*db)->ShardedTableNames()) {
    storage::ShardedTable* table = (*db)->GetShardedTable(name);
    std::printf("  %-16s ~%zu entries (%zu shards)\n", name.c_str(),
                table->ApproximateEntryCount(), table->num_shards());
  }
  return 0;
}

int CmdStats(const Args& args) {
  auto db = storage::Database::Open(args.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto index = OpenIndexAnyPolicy(db->get());
  if (!index.ok()) return Fail(index.status());
  auto pattern = PatternFromFlag(args, **index);
  if (!pattern.ok()) return Fail(pattern.status());

  query::QueryProcessor qp(index->get());
  query::StatisticsOptions options;
  options.include_last_completion = args.Has("last-completion");
  auto stats = qp.Statistics(*pattern, options);
  if (!stats.ok()) return Fail(stats.status());
  const auto& dict = (*index)->dictionary();
  for (const auto& row : stats->pairs) {
    std::printf("(%s, %s): %llu completions, avg duration %.2f",
                dict.Name(row.pair.first).c_str(),
                dict.Name(row.pair.second).c_str(),
                static_cast<unsigned long long>(row.total_completions),
                row.average_duration);
    if (row.last_completion.has_value()) {
      std::printf(", last completion at %lld",
                  static_cast<long long>(*row.last_completion));
    }
    std::printf("\n");
  }
  std::printf("whole-pattern completions upper bound: %llu\n",
              static_cast<unsigned long long>(
                  stats->completions_upper_bound));
  std::printf("whole-pattern estimated duration: %.2f\n",
              stats->estimated_duration);
  return 0;
}

/// The CLI's standalone intra-query pool: --query-threads=N with N >= 2
/// parallelizes one-shot detect/query/continue runs the same way serve
/// does (null = serial engine).
std::unique_ptr<ThreadPool> QueryPoolFromFlags(const Args& args) {
  size_t n = static_cast<size_t>(args.GetInt("query-threads", 0));
  return n > 1 ? std::make_unique<ThreadPool>(n) : nullptr;
}

int CmdDetect(const Args& args) {
  auto db = storage::Database::Open(args.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto index = OpenIndexAnyPolicy(db->get());
  if (!index.ok()) return Fail(index.status());
  auto pattern = PatternFromFlag(args, **index);
  if (!pattern.ok()) return Fail(pattern.status());

  query::DetectionConstraints constraints;
  if (args.Has("max-gap")) constraints.max_gap = args.GetInt("max-gap", 0);
  if (args.Has("max-span")) constraints.max_span = args.GetInt("max-span", 0);

  std::unique_ptr<ThreadPool> pool = QueryPoolFromFlags(args);
  query::QueryProcessor qp(index->get(), pool.get());
  Stopwatch watch;
  auto matches = qp.Detect(*pattern, constraints);
  if (!matches.ok()) return Fail(matches.status());
  double ms = watch.ElapsedMillis();

  size_t limit = static_cast<size_t>(args.GetInt("limit", 20));
  for (size_t i = 0; i < matches->size() && i < limit; ++i) {
    const auto& match = (*matches)[i];
    std::printf("trace %llu:",
                static_cast<unsigned long long>(match.trace));
    for (auto ts : match.timestamps) {
      std::printf(" %lld", static_cast<long long>(ts));
    }
    std::printf("\n");
  }
  if (matches->size() > limit) {
    std::printf("... and %zu more\n", matches->size() - limit);
  }
  std::printf("%zu matches in %.3f ms (policy %s)\n", matches->size(), ms,
              index::PolicyName((*index)->options().policy));
  return 0;
}

int CmdContinue(const Args& args) {
  auto db = storage::Database::Open(args.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto index = OpenIndexAnyPolicy(db->get());
  if (!index.ok()) return Fail(index.status());
  auto pattern = PatternFromFlag(args, **index);
  if (!pattern.ok()) return Fail(pattern.status());

  std::unique_ptr<ThreadPool> pool = QueryPoolFromFlags(args);
  query::QueryProcessor qp(index->get(), pool.get());
  std::string mode = args.Get("mode", "accurate");
  Stopwatch watch;
  Result<std::vector<query::ContinuationProposal>> proposals =
      Status::Internal("unset");
  if (args.Has("insert-at")) {
    size_t at = static_cast<size_t>(args.GetInt("insert-at", 0));
    proposals = mode == "fast" ? qp.ContinueInsertFast(*pattern, at)
                               : qp.ContinueInsertAccurate(*pattern, at);
  } else if (mode == "accurate") {
    proposals = qp.ContinueAccurate(*pattern);
  } else if (mode == "fast") {
    proposals = qp.ContinueFast(*pattern);
  } else if (mode == "hybrid") {
    proposals = qp.ContinueHybrid(
        *pattern, static_cast<size_t>(args.GetInt("topk", 5)));
  } else {
    return Fail(Status::InvalidArgument("unknown mode: " + mode));
  }
  if (!proposals.ok()) return Fail(proposals.status());
  double ms = watch.ElapsedMillis();

  const auto& dict = (*index)->dictionary();
  size_t limit = static_cast<size_t>(args.GetInt("limit", 10));
  for (size_t i = 0; i < proposals->size() && i < limit; ++i) {
    const auto& p = (*proposals)[i];
    std::printf("%2zu. %-24s completions=%-8llu avg_gap=%-10.2f score=%.4f\n",
                i + 1, dict.Name(p.activity).c_str(),
                static_cast<unsigned long long>(p.total_completions),
                p.average_duration, p.score);
  }
  std::printf("%zu proposals in %.3f ms (%s)\n", proposals->size(), ms,
              mode.c_str());
  return 0;
}

int CmdQuery(const Args& args) {
  if (args.Has("port")) {
    // Live mode: GET /detect from a running `seqdet serve` or
    // `seqdet route` and print the JSON body verbatim — which makes
    // byte-comparing a router against a single server a shell one-liner
    // (tools/check_all.sh does exactly that).
    std::string text = args.Get("q");
    if (text.empty()) {
      return Fail(Status::InvalidArgument("--q=<pattern> is required"));
    }
    std::string target = "/detect?q=" + server::HttpClient::UrlEncode(text);
    if (args.Has("limit")) {
      target += "&limit=" + std::to_string(args.GetInt("limit", 100));
    }
    if (args.Has("deadline-ms")) {
      target += "&deadline_ms=" + std::to_string(args.GetInt("deadline-ms", 0));
    }
    server::HttpClient client(static_cast<uint16_t>(args.GetInt("port", 0)));
    auto response = client.Get(target);
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n", response->body.c_str());
    if (response->status != 200) {
      std::fprintf(stderr, "HTTP %d\n", response->status);
      return 1;
    }
    return 0;
  }
  auto db = storage::Database::Open(args.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto index = OpenIndexAnyPolicy(db->get());
  if (!index.ok()) return Fail(index.status());
  std::string text = args.Get("q");
  if (text.empty()) {
    return Fail(Status::InvalidArgument(
        "--q=\"a -> b within N gap <= M\" is required"));
  }
  auto parsed = query::ParseExtendedPatternQuery(text, (*index)->dictionary());
  if (!parsed.ok()) return Fail(parsed.status());

  std::unique_ptr<ThreadPool> pool = QueryPoolFromFlags(args);
  query::QueryProcessor qp(index->get(), pool.get());
  Stopwatch watch;
  auto matches = qp.DetectExtended(*parsed);
  if (!matches.ok()) return Fail(matches.status());
  double ms = watch.ElapsedMillis();
  size_t limit = static_cast<size_t>(args.GetInt("limit", 20));
  for (size_t i = 0; i < matches->size() && i < limit; ++i) {
    const auto& match = (*matches)[i];
    std::printf("trace %llu:",
                static_cast<unsigned long long>(match.trace));
    for (auto ts : match.timestamps) {
      std::printf(" %lld", static_cast<long long>(ts));
    }
    std::printf("\n");
  }
  if (matches->size() > limit) {
    std::printf("... and %zu more\n", matches->size() - limit);
  }
  std::printf("%zu matches in %.3f ms\n", matches->size(), ms);
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void ServeSignalHandler(int) { g_serve_stop = 1; }

int CmdServe(const Args& args) {
  auto db = storage::Database::Open(args.Get("db"));
  if (!db.ok()) return Fail(db.status());
  index::MaintenanceOptions maint;
  maint.auto_fold = args.Has("auto-fold");
  maint.check_interval_ms = static_cast<uint64_t>(args.GetInt(
      "fold-interval-ms", static_cast<int64_t>(maint.check_interval_ms)));
  maint.min_pending_bytes = static_cast<uint64_t>(args.GetInt(
      "fold-min-bytes", static_cast<int64_t>(maint.min_pending_bytes)));
  maint.min_pending_ops = static_cast<uint64_t>(args.GetInt(
      "fold-min-ops", static_cast<int64_t>(maint.min_pending_ops)));
  maint.rate_limit_bytes_per_sec = static_cast<uint64_t>(args.GetInt(
      "fold-rate-limit",
      static_cast<int64_t>(maint.rate_limit_bytes_per_sec)));
  auto index = OpenIndexAnyPolicy(db->get(), &maint);
  if (!index.ok()) return Fail(index.status());
  server::ServingOptions serving;
  serving.max_inflight =
      static_cast<size_t>(args.GetInt("max-inflight",
                                      static_cast<int64_t>(serving.max_inflight)));
  serving.default_deadline_ms =
      args.GetInt("request-deadline-ms", serving.default_deadline_ms);
  serving.query_threads =
      static_cast<size_t>(args.GetInt("query-threads", 0));
  server::QueryService service(index->get(), serving);
  server::HttpServerOptions http_options;
  http_options.num_threads =
      static_cast<size_t>(args.GetInt("http-threads", 0));
  http_options.backlog = static_cast<int>(args.GetInt("backlog", 0));
  http_options.max_keepalive_requests = static_cast<size_t>(args.GetInt(
      "keepalive-max",
      static_cast<int64_t>(http_options.max_keepalive_requests)));
  http_options.idle_timeout_ms =
      args.GetInt("idle-timeout-ms", http_options.idle_timeout_ms);
  server::HttpServer http(http_options);
  service.RegisterRoutes(&http);
  uint16_t port = static_cast<uint16_t>(args.GetInt("port", 8391));
  Status started = http.Start(port);
  if (!started.ok()) return Fail(started);
  std::printf("query service listening on http://127.0.0.1:%u "
              "(%zu workers, %zu query threads, max in-flight %zu, "
              "default deadline %lld ms)\n"
              "endpoints: /health /info /detect /stats /continue\n"
              "example: curl 'http://127.0.0.1:%u/detect?q=act_0+-%%3E+act_1'\n"
              "auto-fold: %s\n"
              "Ctrl-C to stop.\n",
              http.port(), http.options().num_threads,
              serving.query_threads, serving.max_inflight,
              static_cast<long long>(serving.default_deadline_ms),
              http.port(), maint.auto_fold ? "on" : "off");
  // Serve until SIGINT/SIGTERM, then shut down cleanly: stop accepting,
  // quiesce the maintenance service (finishes the in-flight fold commit,
  // aborts the rest), and flush through the index destructor.
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  while (!g_serve_stop) pause();
  std::printf("\nshutting down...\n");
  http.Stop();
  server::HttpServerStats http_stats = http.stats();
  server::ServingStatsSnapshot stats = service.serving_stats();
  std::printf("served %llu requests over %llu connections "
              "(%llu bad, %llu read timeouts, %llu shed)\n",
              static_cast<unsigned long long>(http_stats.requests_served),
              static_cast<unsigned long long>(http_stats.connections_accepted),
              static_cast<unsigned long long>(http_stats.bad_requests),
              static_cast<unsigned long long>(http_stats.timeouts),
              static_cast<unsigned long long>(stats.shed_total));
  for (const auto& route : stats.routes) {
    if (route.requests == 0) continue;
    std::printf("  %-10s %llu requests, %llu shed, %llu deadline-exceeded, "
                "p50 %.2f ms, p99 %.2f ms\n",
                route.route.c_str(),
                static_cast<unsigned long long>(route.requests),
                static_cast<unsigned long long>(route.shed),
                static_cast<unsigned long long>(route.deadline_exceeded),
                route.p50_ms, route.p99_ms);
  }
  if ((*index)->maintenance() != nullptr) {
    (*index)->maintenance()->Stop();
    index::MaintenanceStats stats = (*index)->maintenance_stats();
    std::printf("maintenance: %llu cycles, %llu folds, %llu keys folded, "
                "%llu bytes rewritten\n",
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(stats.folds_run),
                static_cast<unsigned long long>(stats.keys_folded),
                static_cast<unsigned long long>(stats.bytes_rewritten));
  }
  Status flush = (*index)->Flush();
  if (!flush.ok()) return Fail(flush);
  return 0;
}

int CmdShardSplit(const Args& args) {
  std::string log_path = args.Get("log"), out = args.Get("out");
  int64_t num_shards = args.GetInt("shards", 0);
  if (log_path.empty() || out.empty() || num_shards < 1) return Usage();
  auto log = LoadLogFile(args, log_path);
  if (!log.ok()) return Fail(log.status());

  // Partition by trace hash (index/trace_shard.h — the same function the
  // router's merge correctness rests on: every trace lives in exactly one
  // shard). Every partition pre-interns the FULL source dictionary, in
  // source order, so activity ids are identical across shards; the raw
  // merge protocol and RankProposals' id tie-break depend on that, and it
  // spares queries for activities that only occur in other shards from
  // spurious unknown-activity errors.
  std::vector<eventlog::EventLog> parts(static_cast<size_t>(num_shards));
  for (auto& part : parts) {
    for (const auto& name : log->dictionary().names()) {
      part.dictionary().Intern(name);
    }
  }
  for (const auto& trace : log->traces()) {
    parts[index::ShardOfTrace(trace.id, static_cast<uint64_t>(num_shards))]
        .AddTrace(trace);
  }

  Stopwatch watch;
  for (size_t i = 0; i < parts.size(); ++i) {
    std::string dir = out + StringPrintf("/shard-%03zu", i);
    auto db = storage::Database::Open(dir);
    if (!db.ok()) return Fail(db.status());
    auto index = OpenIndex(args, db->get());
    if (!index.ok()) return Fail(index.status());
    auto stats = (*index)->Update(parts[i]);
    if (!stats.ok()) return Fail(stats.status());
    Status flush = (*index)->Flush();
    if (!flush.ok()) return Fail(flush);
    std::printf("shard %3zu: %s — %zu traces, %zu events, "
                "%zu pair completions\n",
                i, dir.c_str(), parts[i].num_traces(), parts[i].num_events(),
                stats->pairs_indexed);
  }
  std::printf("split %zu traces into %lld shards in %.2fs\n",
              log->num_traces(), static_cast<long long>(num_shards),
              watch.ElapsedSeconds());
  return 0;
}

int CmdRoute(const Args& args) {
  auto shards = server::ParseShardList(args.Get("shards"));
  if (!shards.ok()) return Fail(shards.status());
  server::RouterOptions options;
  options.shards = *shards;
  options.default_deadline_ms =
      args.GetInt("request-deadline-ms", options.default_deadline_ms);
  options.max_deadline_ms =
      args.GetInt("max-deadline-ms", options.max_deadline_ms);
  options.merge_margin_ms =
      args.GetInt("merge-margin-ms", options.merge_margin_ms);
  options.hedge_after_ms =
      args.GetInt("hedge-after-ms", options.hedge_after_ms);
  options.connect_timeout_ms =
      args.GetInt("connect-timeout-ms", options.connect_timeout_ms);
  options.breaker_failure_threshold = static_cast<size_t>(args.GetInt(
      "breaker-failures",
      static_cast<int64_t>(options.breaker_failure_threshold)));
  options.breaker_cooldown_ms =
      args.GetInt("breaker-cooldown-ms", options.breaker_cooldown_ms);
  options.allow_partial = args.Has("allow-partial");
  options.scatter_threads =
      static_cast<size_t>(args.GetInt("scatter-threads", 0));
  server::ShardRouter router(options);

  server::HttpServerOptions http_options;
  http_options.num_threads =
      static_cast<size_t>(args.GetInt("http-threads", 0));
  server::HttpServer http(http_options);
  router.RegisterRoutes(&http);
  Status started = http.Start(static_cast<uint16_t>(args.GetInt("port", 8390)));
  if (!started.ok()) return Fail(started);
  std::printf("shard router listening on http://127.0.0.1:%u over %zu "
              "workers (deadline %lld ms, hedge after %lld ms, "
              "partial results %s)\n",
              http.port(), options.shards.size(),
              static_cast<long long>(options.default_deadline_ms),
              static_cast<long long>(options.hedge_after_ms),
              options.allow_partial ? "allowed" : "refused");
  for (const auto& endpoint : options.shards) {
    std::printf("  shard %s\n", endpoint.ToString().c_str());
  }
  std::printf("endpoints: /health /info /detect /stats /continue\n"
              "Ctrl-C to stop.\n");
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  while (!g_serve_stop) pause();
  std::printf("\nshutting down...\n");
  http.Stop();
  server::RouterStatsSnapshot stats = router.stats();
  std::printf("routed %llu scatters: %llu merged, %llu degraded, "
              "%llu failed fan-ins, %llu passthrough\n",
              static_cast<unsigned long long>(stats.scatters),
              static_cast<unsigned long long>(stats.merged_ok),
              static_cast<unsigned long long>(stats.degraded),
              static_cast<unsigned long long>(stats.partial_503),
              static_cast<unsigned long long>(stats.passthrough));
  for (const auto& shard : stats.shards) {
    std::printf("  %-21s %llu requests, %llu failures, %llu hedges "
                "(%llu won), breaker %s (opened %llu, short-circuited "
                "%llu)\n",
                shard.endpoint.c_str(),
                static_cast<unsigned long long>(shard.requests),
                static_cast<unsigned long long>(shard.failures),
                static_cast<unsigned long long>(shard.hedges),
                static_cast<unsigned long long>(shard.hedge_wins),
                shard.breaker.c_str(),
                static_cast<unsigned long long>(shard.breaker_opens),
                static_cast<unsigned long long>(shard.short_circuits));
  }
  return 0;
}

int CmdCheck(const Args& args) {
  auto db = storage::Database::Open(args.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto index = OpenIndexAnyPolicy(db->get());
  if (!index.ok()) return Fail(index.status());
  Stopwatch watch;
  auto report = (*index)->CheckConsistency();
  if (!report.ok()) return Fail(report.status());
  std::printf(
      "checked %zu pairs / %zu postings / %zu traces in %.2fs\n",
      report->pairs_checked, report->postings_checked,
      report->traces_checked, watch.ElapsedSeconds());
  for (const auto& violation : report->violations) {
    std::printf("VIOLATION: %s\n", violation.c_str());
  }
  if (!report->ok()) {
    std::printf("%zu invariant violations found\n",
                report->violations.size());
    return 1;
  }
  std::printf("index is consistent\n");
  return 0;
}

int CmdFold(const Args& args) {
  auto db = storage::Database::Open(args.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto index = OpenIndexAnyPolicy(db->get());
  if (!index.ok()) return Fail(index.status());
  Stopwatch watch;
  Status stats = (*index)->CompactStatistics();
  if (!stats.ok()) return Fail(stats);
  Status postings = (*index)->FoldPostings();
  if (!postings.ok()) return Fail(postings);
  Status flush = (*index)->Flush();
  if (!flush.ok()) return Fail(flush);
  std::printf(
      "folded statistics deltas and posting lists (format v%u) in %.2fs\n",
      (*index)->posting_format(), watch.ElapsedSeconds());
  return 0;
}

int CmdPrune(const Args& args) {
  auto db = storage::Database::Open(args.Get("db"));
  if (!db.ok()) return Fail(db.status());
  auto index = OpenIndexAnyPolicy(db->get());
  if (!index.ok()) return Fail(index.status());
  if (!args.Has("trace")) return Usage();
  auto trace = static_cast<eventlog::TraceId>(args.GetInt("trace", 0));
  Status pruned = (*index)->PruneTrace(trace);
  if (!pruned.ok()) return Fail(pruned);
  Status flush = (*index)->Flush();
  if (!flush.ok()) return Fail(flush);
  std::printf("pruned trace %llu from Seq and LastChecked\n",
              static_cast<unsigned long long>(trace));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "index") return CmdIndex(args);
  if (args.command == "info") return CmdInfo(args);
  if (args.command == "stats") return CmdStats(args);
  if (args.command == "detect") return CmdDetect(args);
  if (args.command == "query") return CmdQuery(args);
  if (args.command == "serve") return CmdServe(args);
  if (args.command == "shard-split") return CmdShardSplit(args);
  if (args.command == "route") return CmdRoute(args);
  if (args.command == "continue") return CmdContinue(args);
  if (args.command == "prune") return CmdPrune(args);
  if (args.command == "fold") return CmdFold(args);
  if (args.command == "check") return CmdCheck(args);
  return Usage();
}
