// Clickstream funnel analysis — the motivating scenario of the paper's
// §2.1: in web-session logs, detect
//   (a) SC  : "search immediately followed by add-to-cart" (no action in
//             between), and
//   (b) STNM: "three searches eventually followed by a checkout" — with
//             irrelevant clicks skipped.
// Plus a funnel drop-off report built from Statistics queries.
//
//   ./build/examples/clickstream_funnel

#include <cstdio>

#include "common/rng.h"
#include "index/sequence_index.h"
#include "log/event_log.h"
#include "query/query_processor.h"
#include "storage/database.h"

using namespace seqdet;

namespace {

// Synthesizes web sessions: browse/search/view/cart/checkout behaviour with
// realistic drop-off (most sessions never reach checkout).
eventlog::EventLog MakeClickstream(size_t sessions, uint64_t seed) {
  const char* kActions[] = {"home",     "search", "view_product",
                            "add_to_cart", "checkout", "help"};
  eventlog::EventLog log;
  Rng rng(seed);
  for (size_t s = 0; s < sessions; ++s) {
    eventlog::Timestamp ts = static_cast<eventlog::Timestamp>(
        rng.NextBounded(1000000));
    log.Append(s, "home", ts);
    size_t clicks = 3 + rng.NextBounded(15);
    int funnel_stage = 0;  // 0 browsing, 1 viewed, 2 carted
    for (size_t c = 0; c < clicks; ++c) {
      ts += 1 + static_cast<eventlog::Timestamp>(rng.NextBounded(120));
      double roll = rng.NextDouble();
      const char* action;
      if (roll < 0.35) {
        action = "search";
      } else if (roll < 0.6) {
        action = "view_product";
        funnel_stage = std::max(funnel_stage, 1);
      } else if (roll < 0.75 && funnel_stage >= 1) {
        action = "add_to_cart";
        funnel_stage = 2;
      } else if (roll < 0.8 && funnel_stage == 2) {
        action = "checkout";
      } else if (roll < 0.9) {
        action = "home";
      } else {
        action = "help";
      }
      log.Append(s, action, ts);
    }
    (void)kActions;
  }
  log.SortAllTraces();
  return log;
}

}  // namespace

int main() {
  eventlog::EventLog log = MakeClickstream(/*sessions=*/2000, /*seed=*/7);
  std::printf("clickstream: %zu sessions, %zu events, %zu actions\n",
              log.num_traces(), log.num_events(), log.num_activities());

  storage::DbOptions db_options;
  db_options.table.in_memory = true;
  db_options.table.use_wal = false;
  auto db = storage::Database::Open("", db_options);

  // Two indices over the same log: one per detection policy. (A production
  // deployment would keep both, as the paper's Table 6 prices both.)
  index::IndexOptions sc_options;
  sc_options.policy = index::Policy::kStrictContiguity;
  auto sc_index = index::SequenceIndex::Open(db->get(), sc_options);
  // Policy is fixed per database (the tables encode one pair semantics),
  // so STNM gets its own database.
  auto db2 = storage::Database::Open("", db_options);
  index::IndexOptions stnm_options;
  stnm_options.policy = index::Policy::kSkipTillNextMatch;
  auto stnm_index = index::SequenceIndex::Open(db2->get(), stnm_options);

  if (!(*sc_index)->Update(log).ok() || !(*stnm_index)->Update(log).ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }

  query::QueryProcessor sc_qp(sc_index->get());
  query::QueryProcessor stnm_qp(stnm_index->get());

  // (a) SC: search immediately followed by add_to_cart.
  auto sc_pattern = query::Pattern::FromNames(
      (*sc_index)->dictionary(), {"search", "add_to_cart"});
  auto sc_matches = sc_qp.Detect(*sc_pattern);
  std::printf(
      "\n(a) SC 'search -> add_to_cart' (nothing in between): %zu "
      "occurrences\n",
      sc_matches->size());

  // (b) STNM: a search that leads to a product view and eventually a
  // checkout, with any number of irrelevant clicks skipped in between.
  auto stnm_pattern = query::Pattern::FromNames(
      (*stnm_index)->dictionary(),
      {"search", "view_product", "checkout"});
  auto stnm_matches = stnm_qp.Detect(*stnm_pattern);
  std::printf(
      "(b) STNM 'search ... view_product ... checkout': %zu occurrences\n",
      stnm_matches->size());

  // Funnel drop-off from pairwise statistics (upper bounds, no detection
  // needed — the cheap Statistics query of §3.2.1).
  auto funnel = query::Pattern::FromNames(
      (*stnm_index)->dictionary(),
      {"search", "view_product", "add_to_cart", "checkout"});
  auto stats = stnm_qp.Statistics(*funnel);
  std::printf("\nfunnel pairwise statistics:\n");
  const auto& dict = (*stnm_index)->dictionary();
  for (const auto& row : stats->pairs) {
    std::printf("  %-14s -> %-14s %8llu completions, avg gap %7.1fs\n",
                dict.Name(row.pair.first).c_str(),
                dict.Name(row.pair.second).c_str(),
                static_cast<unsigned long long>(row.total_completions),
                row.average_duration);
  }
  std::printf("  full-funnel upper bound: %llu sessions\n",
              static_cast<unsigned long long>(stats->completions_upper_bound));

  // What do shoppers do right after carting an item?
  auto after_cart = query::Pattern::FromNames(
      (*stnm_index)->dictionary(), {"add_to_cart"});
  auto proposals = stnm_qp.ContinueFast(*after_cart);
  std::printf("\nafter add_to_cart, users most often continue with:\n");
  for (size_t i = 0; i < proposals->size() && i < 3; ++i) {
    std::printf("  %zu. %s (score %.3f)\n", i + 1,
                dict.Name((*proposals)[i].activity).c_str(),
                (*proposals)[i].score);
  }
  return 0;
}
