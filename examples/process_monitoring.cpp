// Business-process monitoring — the paper's BPI-style use case:
//  * logs arrive in periodic batches (Algorithm 1 incremental updates);
//  * an analyst predicts the next task of in-flight cases with the three
//    pattern-continuation flavors (Accurate / Fast / Hybrid) and sees the
//    accuracy/latency trade-off of §5.4.3 first-hand.
//
//   ./build/examples/process_monitoring

#include <cstdio>

#include "common/timer.h"
#include "datagen/generators.h"
#include "index/sequence_index.h"
#include "query/query_processor.h"
#include "storage/database.h"

using namespace seqdet;

int main() {
  // A loan-application-like process log (bpi_2017 profile, scaled down).
  datagen::BpiProfile profile = datagen::Bpi2017Profile();
  profile.num_traces = 2000;
  eventlog::EventLog log = datagen::GenerateBpiLikeLog(profile);
  std::printf("process log: %zu cases, %zu events, %zu tasks\n",
              log.num_traces(), log.num_events(), log.num_activities());

  storage::DbOptions db_options;
  db_options.table.in_memory = true;
  db_options.table.use_wal = false;
  auto db = storage::Database::Open("", db_options);
  auto index = index::SequenceIndex::Open(db->get(), index::IndexOptions{});

  // Periodic ingestion: split each case into three "days" of events and
  // feed them as separate batches; LastChecked guarantees no duplicate
  // postings even though every batch re-extends known traces.
  const size_t kBatches = 3;
  size_t total_pairs = 0;
  for (size_t b = 0; b < kBatches; ++b) {
    eventlog::EventLog batch;
    for (const auto& trace : log.traces()) {
      size_t per = (trace.size() + kBatches - 1) / kBatches;
      for (size_t i = b * per; i < std::min(trace.size(), (b + 1) * per);
           ++i) {
        batch.Append(trace.id,
                     log.dictionary().Name(trace.events[i].activity),
                     trace.events[i].ts);
      }
    }
    batch.SortAllTraces();
    auto stats = (*index)->Update(batch);
    if (!stats.ok()) {
      std::fprintf(stderr, "batch %zu failed: %s\n", b,
                   stats.status().ToString().c_str());
      return 1;
    }
    total_pairs += stats->pairs_indexed;
    std::printf("batch %zu: %zu events -> %zu new pair completions\n", b,
                batch.num_events(), stats->pairs_indexed);
  }
  std::printf("total pair completions indexed: %zu\n", total_pairs);

  // Take an in-flight case prefix and predict its next task.
  query::QueryProcessor qp(index->get());
  const auto& dict = (*index)->dictionary();
  const auto& some_case = log.traces()[42];
  std::vector<eventlog::ActivityId> prefix;
  for (size_t i = 0; i < std::min<size_t>(3, some_case.size()); ++i) {
    prefix.push_back(some_case.events[i].activity);
  }
  query::Pattern pattern(prefix);
  std::printf("\nin-flight case prefix: %s\n",
              pattern.ToString(dict).c_str());

  auto show = [&](const char* name, const auto& result, double millis) {
    std::printf("%-8s (%7.2f ms):", name, millis);
    for (size_t i = 0; i < result.size() && i < 3; ++i) {
      std::printf("  %s(%.2f)", dict.Name(result[i].activity).c_str(),
                  result[i].score);
    }
    std::printf("\n");
  };

  Stopwatch watch;
  auto accurate = qp.ContinueAccurate(pattern);
  double accurate_ms = watch.ElapsedMillis();
  watch.Restart();
  auto fast = qp.ContinueFast(pattern);
  double fast_ms = watch.ElapsedMillis();
  watch.Restart();
  auto hybrid = qp.ContinueHybrid(pattern, /*top_k=*/3);
  double hybrid_ms = watch.ElapsedMillis();

  std::printf("\ntop-3 next-task predictions per method:\n");
  show("Accurate", *accurate, accurate_ms);
  show("Fast", *fast, fast_ms);
  show("Hybrid", *hybrid, hybrid_ms);

  // Sanity: what actually happened next in that case?
  if (some_case.size() > 3) {
    std::printf("\nground truth next task of case %llu: %s\n",
                static_cast<unsigned long long>(some_case.id),
                log.dictionary().Name(some_case.events[3].activity).c_str());
  }
  return 0;
}
