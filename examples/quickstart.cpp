// Quickstart: build an index over a small in-memory event log and run all
// three query families of the paper (statistics, detection, continuation).
//
//   ./build/examples/quickstart

#include <cstdio>

#include "index/sequence_index.h"
#include "log/event_log.h"
#include "query/query_processor.h"
#include "storage/database.h"

using namespace seqdet;

int main() {
  // 1. An event log: traces of (activity, timestamp) events. This is the
  //    running example of the paper (§3.1.1, Table 3) plus one more trace.
  eventlog::EventLog log;
  log.Append(/*trace=*/1, "A", 1);
  log.Append(1, "A", 2);
  log.Append(1, "B", 3);
  log.Append(1, "A", 4);
  log.Append(1, "B", 5);
  log.Append(1, "A", 6);
  log.Append(/*trace=*/2, "A", 10);
  log.Append(2, "B", 12);
  log.Append(2, "C", 15);
  log.SortAllTraces();

  // 2. A database for the index tables. In-memory here; pass a directory
  //    for a persistent index.
  storage::DbOptions db_options;
  db_options.table.in_memory = true;
  db_options.table.use_wal = false;
  auto db = storage::Database::Open("", db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 3. The pre-processing component: builds the inverted event-pair index
  //    (skip-till-next-match by default).
  index::IndexOptions options;
  auto index = index::SequenceIndex::Open(db->get(), options);
  if (!index.ok()) {
    std::fprintf(stderr, "index open failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  auto build = (*index)->Update(log);
  if (!build.ok()) {
    std::fprintf(stderr, "update failed: %s\n",
                 build.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu traces, %zu pair completions\n",
              build->traces_processed, build->pairs_indexed);

  // 4. The query processor.
  query::QueryProcessor qp(index->get());
  const auto& dict = (*index)->dictionary();
  auto pattern = query::Pattern::FromNames(dict, {"A", "B"});

  // 4a. Statistics: pairwise counts and duration estimates.
  auto stats = qp.Statistics(*pattern);
  std::printf("\nStatistics for %s:\n", pattern->ToString(dict).c_str());
  for (const auto& row : stats->pairs) {
    std::printf("  (%s,%s): %llu completions, avg duration %.2f\n",
                dict.Name(row.pair.first).c_str(),
                dict.Name(row.pair.second).c_str(),
                static_cast<unsigned long long>(row.total_completions),
                row.average_duration);
  }
  std::printf("  whole-pattern upper bound: %llu completions\n",
              static_cast<unsigned long long>(stats->completions_upper_bound));

  // 4b. Detection: every occurrence, with timestamps.
  auto matches = qp.Detect(*pattern);
  std::printf("\nDetection of %s: %zu matches\n",
              pattern->ToString(dict).c_str(), matches->size());
  for (const auto& match : *matches) {
    std::printf("  trace %llu at ts",
                static_cast<unsigned long long>(match.trace));
    for (auto ts : match.timestamps) {
      std::printf(" %lld", static_cast<long long>(ts));
    }
    std::printf("\n");
  }

  // 4c. Continuation: which activity most likely comes next?
  auto proposals = qp.ContinueAccurate(*pattern);
  std::printf("\nMost likely continuations of %s:\n",
              pattern->ToString(dict).c_str());
  for (const auto& proposal : *proposals) {
    std::printf("  %s  (completions=%llu, avg gap=%.2f, score=%.3f)\n",
                dict.Name(proposal.activity).c_str(),
                static_cast<unsigned long long>(proposal.total_completions),
                proposal.average_duration, proposal.score);
  }
  return 0;
}
