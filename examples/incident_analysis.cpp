// Incident-log exploration with a *persistent* index: ingest an XES file
// (written on first run), keep the index on disk across runs, and query it.
// Demonstrates the full Figure-1 pipeline: log file -> pre-processing
// component -> key-value tables -> query processor.
//
//   ./build/examples/incident_analysis [workdir]

#include <cstdio>
#include <filesystem>

#include "datagen/generators.h"
#include "index/sequence_index.h"
#include "log/xes_io.h"
#include "query/query_processor.h"
#include "storage/database.h"

using namespace seqdet;

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string workdir = argc > 1 ? argv[1] : "/tmp/seqdet_incidents";
  fs::create_directories(workdir);
  std::string xes_path = workdir + "/incidents.xes";
  std::string db_path = workdir + "/indexdb";

  // First run: synthesize an incident-management log (the bpi_2013 Volvo
  // IT profile) and write it as XES, standing in for an exported log file.
  if (!fs::exists(xes_path)) {
    datagen::BpiProfile profile = datagen::Bpi2013Profile();
    profile.num_traces = 1500;
    eventlog::EventLog log = datagen::GenerateBpiLikeLog(profile);
    auto write = eventlog::WriteXesLogFile(log, xes_path);
    if (!write.ok()) {
      std::fprintf(stderr, "write failed: %s\n", write.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu incidents to %s\n", log.num_traces(),
                xes_path.c_str());
  }

  // Every run: parse the XES file and (incrementally) index it. The second
  // run finds the persisted index and LastChecked suppresses every
  // already-indexed completion.
  auto log = eventlog::ReadXesLogFile(xes_path);
  if (!log.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 log.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu traces / %zu events from XES\n", log->num_traces(),
              log->num_events());

  auto db = storage::Database::Open(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "db open failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  auto index = index::SequenceIndex::Open(db->get(), index::IndexOptions{});
  if (!index.ok()) {
    std::fprintf(stderr, "index open failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  auto stats = (*index)->Update(*log);
  if (!stats.ok()) {
    std::fprintf(stderr, "update failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("update: %zu new pair completions (0 on re-runs — the "
              "index is persistent and deduplicated)\n",
              stats->pairs_indexed);

  // Explore: which task most often follows the most common opening task,
  // and which incidents ping-pong (same task twice with something between).
  query::QueryProcessor qp(index->get());
  const auto& dict = (*index)->dictionary();

  auto openers = (*index)->GetFollowerStats(dict.Lookup("act_0"));
  if (openers.ok() && !openers->empty()) {
    std::printf("\nmost frequent successors of act_0:\n");
    for (size_t i = 0; i < openers->size() && i < 3; ++i) {
      std::printf("  %s: %llu times, avg %.0fs later\n",
                  dict.Name((*openers)[i].other).c_str(),
                  static_cast<unsigned long long>(
                      (*openers)[i].total_completions),
                  (*openers)[i].AverageDuration());
    }
  }

  // Ping-pong detection: act_1 ... act_1 within the same incident (STNM).
  auto pattern = query::Pattern::FromNames(dict, {"act_1", "act_1"});
  if (pattern.ok()) {
    auto matches = qp.Detect(*pattern);
    if (matches.ok()) {
      std::printf("\nincidents where act_1 recurs (ping-pong): %zu\n",
                  matches->size());
    }
  }

  std::printf("\nindex database tables in %s:\n", db_path.c_str());
  for (const auto& name : (*db)->TableNames()) {
    std::printf("  %-12s ~%zu entries\n", name.c_str(),
                (*db)->GetTable(name)->ApproximateEntryCount());
  }
  for (const auto& name : (*db)->ShardedTableNames()) {
    storage::ShardedTable* table = (*db)->GetShardedTable(name);
    std::printf("  %-12s ~%zu entries (%zu shards)\n", name.c_str(),
                table->ApproximateEntryCount(), table->num_shards());
  }
  if (auto flush = (*index)->Flush(); !flush.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", flush.ToString().c_str());
    return 1;
  }
  std::printf("\nre-run me: the index persists and the update is a no-op.\n");
  return 0;
}
