# Empty dependencies file for seqdet.
# This may be replaced when dependencies are built.
