file(REMOVE_RECURSE
  "CMakeFiles/seqdet.dir/seqdet_cli.cc.o"
  "CMakeFiles/seqdet.dir/seqdet_cli.cc.o.d"
  "seqdet"
  "seqdet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqdet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
