file(REMOVE_RECURSE
  "CMakeFiles/posting_cache_test.dir/posting_cache_test.cc.o"
  "CMakeFiles/posting_cache_test.dir/posting_cache_test.cc.o.d"
  "posting_cache_test"
  "posting_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posting_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
