# Empty dependencies file for posting_cache_test.
# This may be replaced when dependencies are built.
