# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for posting_cache_test.
