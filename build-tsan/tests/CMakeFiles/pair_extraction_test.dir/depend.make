# Empty dependencies file for pair_extraction_test.
# This may be replaced when dependencies are built.
