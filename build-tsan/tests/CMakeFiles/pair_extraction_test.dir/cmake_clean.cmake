file(REMOVE_RECURSE
  "CMakeFiles/pair_extraction_test.dir/pair_extraction_test.cc.o"
  "CMakeFiles/pair_extraction_test.dir/pair_extraction_test.cc.o.d"
  "pair_extraction_test"
  "pair_extraction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_extraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
