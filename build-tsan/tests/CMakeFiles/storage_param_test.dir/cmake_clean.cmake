file(REMOVE_RECURSE
  "CMakeFiles/storage_param_test.dir/storage_param_test.cc.o"
  "CMakeFiles/storage_param_test.dir/storage_param_test.cc.o.d"
  "storage_param_test"
  "storage_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
