# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build-tsan/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(log_test "/root/repo/build-tsan/tests/log_test")
set_tests_properties(log_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build-tsan/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_param_test "/root/repo/build-tsan/tests/storage_param_test")
set_tests_properties(storage_param_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(failure_injection_test "/root/repo/build-tsan/tests/failure_injection_test")
set_tests_properties(failure_injection_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build-tsan/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pair_extraction_test "/root/repo/build-tsan/tests/pair_extraction_test")
set_tests_properties(pair_extraction_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build-tsan/tests/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(posting_cache_test "/root/repo/build-tsan/tests/posting_cache_test")
set_tests_properties(posting_cache_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build-tsan/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build-tsan/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build-tsan/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(server_test "/root/repo/build-tsan/tests/server_test")
set_tests_properties(server_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build-tsan/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;25;seqdet_test;/root/repo/tests/CMakeLists.txt;0;")
