# Empty compiler generated dependencies file for figure7_hybrid_accuracy.
# This may be replaced when dependencies are built.
