file(REMOVE_RECURSE
  "CMakeFiles/figure7_hybrid_accuracy.dir/figure7_hybrid_accuracy.cpp.o"
  "CMakeFiles/figure7_hybrid_accuracy.dir/figure7_hybrid_accuracy.cpp.o.d"
  "figure7_hybrid_accuracy"
  "figure7_hybrid_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_hybrid_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
