# Empty compiler generated dependencies file for figure2_dataset_stats.
# This may be replaced when dependencies are built.
