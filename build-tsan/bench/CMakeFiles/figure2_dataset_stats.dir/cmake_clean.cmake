file(REMOVE_RECURSE
  "CMakeFiles/figure2_dataset_stats.dir/figure2_dataset_stats.cpp.o"
  "CMakeFiles/figure2_dataset_stats.dir/figure2_dataset_stats.cpp.o.d"
  "figure2_dataset_stats"
  "figure2_dataset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
