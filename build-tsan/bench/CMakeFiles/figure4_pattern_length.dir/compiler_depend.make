# Empty compiler generated dependencies file for figure4_pattern_length.
# This may be replaced when dependencies are built.
