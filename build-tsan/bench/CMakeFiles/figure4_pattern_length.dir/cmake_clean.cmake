file(REMOVE_RECURSE
  "CMakeFiles/figure4_pattern_length.dir/figure4_pattern_length.cpp.o"
  "CMakeFiles/figure4_pattern_length.dir/figure4_pattern_length.cpp.o.d"
  "figure4_pattern_length"
  "figure4_pattern_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_pattern_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
