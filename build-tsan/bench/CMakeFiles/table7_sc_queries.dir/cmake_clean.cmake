file(REMOVE_RECURSE
  "CMakeFiles/table7_sc_queries.dir/table7_sc_queries.cpp.o"
  "CMakeFiles/table7_sc_queries.dir/table7_sc_queries.cpp.o.d"
  "table7_sc_queries"
  "table7_sc_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_sc_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
