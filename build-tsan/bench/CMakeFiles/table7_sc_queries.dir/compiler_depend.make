# Empty compiler generated dependencies file for table7_sc_queries.
# This may be replaced when dependencies are built.
