file(REMOVE_RECURSE
  "CMakeFiles/table6_preprocessing.dir/table6_preprocessing.cpp.o"
  "CMakeFiles/table6_preprocessing.dir/table6_preprocessing.cpp.o.d"
  "table6_preprocessing"
  "table6_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
