# Empty dependencies file for table5_stnm_flavors.
# This may be replaced when dependencies are built.
