file(REMOVE_RECURSE
  "CMakeFiles/table5_stnm_flavors.dir/table5_stnm_flavors.cpp.o"
  "CMakeFiles/table5_stnm_flavors.dir/table5_stnm_flavors.cpp.o.d"
  "table5_stnm_flavors"
  "table5_stnm_flavors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_stnm_flavors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
