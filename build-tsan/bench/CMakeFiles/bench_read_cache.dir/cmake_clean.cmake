file(REMOVE_RECURSE
  "CMakeFiles/bench_read_cache.dir/bench_read_cache.cpp.o"
  "CMakeFiles/bench_read_cache.dir/bench_read_cache.cpp.o.d"
  "bench_read_cache"
  "bench_read_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_read_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
