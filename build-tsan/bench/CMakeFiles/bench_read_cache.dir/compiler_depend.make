# Empty compiler generated dependencies file for bench_read_cache.
# This may be replaced when dependencies are built.
