# Empty dependencies file for figure5_continuation.
# This may be replaced when dependencies are built.
