file(REMOVE_RECURSE
  "CMakeFiles/figure5_continuation.dir/figure5_continuation.cpp.o"
  "CMakeFiles/figure5_continuation.dir/figure5_continuation.cpp.o.d"
  "figure5_continuation"
  "figure5_continuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_continuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
