file(REMOVE_RECURSE
  "CMakeFiles/table8_stnm_queries.dir/table8_stnm_queries.cpp.o"
  "CMakeFiles/table8_stnm_queries.dir/table8_stnm_queries.cpp.o.d"
  "table8_stnm_queries"
  "table8_stnm_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_stnm_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
