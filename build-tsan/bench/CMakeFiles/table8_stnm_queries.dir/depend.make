# Empty dependencies file for table8_stnm_queries.
# This may be replaced when dependencies are built.
