file(REMOVE_RECURSE
  "CMakeFiles/figure3_random_sweeps.dir/figure3_random_sweeps.cpp.o"
  "CMakeFiles/figure3_random_sweeps.dir/figure3_random_sweeps.cpp.o.d"
  "figure3_random_sweeps"
  "figure3_random_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_random_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
