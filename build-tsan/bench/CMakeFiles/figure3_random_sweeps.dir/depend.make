# Empty dependencies file for figure3_random_sweeps.
# This may be replaced when dependencies are built.
