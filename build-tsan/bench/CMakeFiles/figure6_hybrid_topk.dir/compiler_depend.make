# Empty compiler generated dependencies file for figure6_hybrid_topk.
# This may be replaced when dependencies are built.
