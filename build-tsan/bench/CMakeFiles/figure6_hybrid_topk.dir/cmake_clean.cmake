file(REMOVE_RECURSE
  "CMakeFiles/figure6_hybrid_topk.dir/figure6_hybrid_topk.cpp.o"
  "CMakeFiles/figure6_hybrid_topk.dir/figure6_hybrid_topk.cpp.o.d"
  "figure6_hybrid_topk"
  "figure6_hybrid_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6_hybrid_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
