file(REMOVE_RECURSE
  "CMakeFiles/seqdet_storage.dir/bloom_filter.cc.o"
  "CMakeFiles/seqdet_storage.dir/bloom_filter.cc.o.d"
  "CMakeFiles/seqdet_storage.dir/database.cc.o"
  "CMakeFiles/seqdet_storage.dir/database.cc.o.d"
  "CMakeFiles/seqdet_storage.dir/memtable.cc.o"
  "CMakeFiles/seqdet_storage.dir/memtable.cc.o.d"
  "CMakeFiles/seqdet_storage.dir/segment.cc.o"
  "CMakeFiles/seqdet_storage.dir/segment.cc.o.d"
  "CMakeFiles/seqdet_storage.dir/sharded_table.cc.o"
  "CMakeFiles/seqdet_storage.dir/sharded_table.cc.o.d"
  "CMakeFiles/seqdet_storage.dir/table.cc.o"
  "CMakeFiles/seqdet_storage.dir/table.cc.o.d"
  "CMakeFiles/seqdet_storage.dir/wal.cc.o"
  "CMakeFiles/seqdet_storage.dir/wal.cc.o.d"
  "libseqdet_storage.a"
  "libseqdet_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqdet_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
