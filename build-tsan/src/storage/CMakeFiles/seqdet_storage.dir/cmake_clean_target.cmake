file(REMOVE_RECURSE
  "libseqdet_storage.a"
)
