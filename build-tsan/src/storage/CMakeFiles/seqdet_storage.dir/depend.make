# Empty dependencies file for seqdet_storage.
# This may be replaced when dependencies are built.
