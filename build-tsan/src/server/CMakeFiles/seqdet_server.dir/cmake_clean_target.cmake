file(REMOVE_RECURSE
  "libseqdet_server.a"
)
