file(REMOVE_RECURSE
  "CMakeFiles/seqdet_server.dir/http_server.cc.o"
  "CMakeFiles/seqdet_server.dir/http_server.cc.o.d"
  "CMakeFiles/seqdet_server.dir/query_service.cc.o"
  "CMakeFiles/seqdet_server.dir/query_service.cc.o.d"
  "libseqdet_server.a"
  "libseqdet_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqdet_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
