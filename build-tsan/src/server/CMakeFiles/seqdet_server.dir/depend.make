# Empty dependencies file for seqdet_server.
# This may be replaced when dependencies are built.
