file(REMOVE_RECURSE
  "CMakeFiles/seqdet_index.dir/index_tables.cc.o"
  "CMakeFiles/seqdet_index.dir/index_tables.cc.o.d"
  "CMakeFiles/seqdet_index.dir/pair_extraction.cc.o"
  "CMakeFiles/seqdet_index.dir/pair_extraction.cc.o.d"
  "CMakeFiles/seqdet_index.dir/posting_cache.cc.o"
  "CMakeFiles/seqdet_index.dir/posting_cache.cc.o.d"
  "CMakeFiles/seqdet_index.dir/sequence_index.cc.o"
  "CMakeFiles/seqdet_index.dir/sequence_index.cc.o.d"
  "libseqdet_index.a"
  "libseqdet_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqdet_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
