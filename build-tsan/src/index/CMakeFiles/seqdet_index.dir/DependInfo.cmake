
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/index_tables.cc" "src/index/CMakeFiles/seqdet_index.dir/index_tables.cc.o" "gcc" "src/index/CMakeFiles/seqdet_index.dir/index_tables.cc.o.d"
  "/root/repo/src/index/pair_extraction.cc" "src/index/CMakeFiles/seqdet_index.dir/pair_extraction.cc.o" "gcc" "src/index/CMakeFiles/seqdet_index.dir/pair_extraction.cc.o.d"
  "/root/repo/src/index/posting_cache.cc" "src/index/CMakeFiles/seqdet_index.dir/posting_cache.cc.o" "gcc" "src/index/CMakeFiles/seqdet_index.dir/posting_cache.cc.o.d"
  "/root/repo/src/index/sequence_index.cc" "src/index/CMakeFiles/seqdet_index.dir/sequence_index.cc.o" "gcc" "src/index/CMakeFiles/seqdet_index.dir/sequence_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/seqdet_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/log/CMakeFiles/seqdet_log.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/seqdet_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
