file(REMOVE_RECURSE
  "libseqdet_index.a"
)
