# Empty dependencies file for seqdet_index.
# This may be replaced when dependencies are built.
