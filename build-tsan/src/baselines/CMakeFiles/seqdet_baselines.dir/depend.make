# Empty dependencies file for seqdet_baselines.
# This may be replaced when dependencies are built.
