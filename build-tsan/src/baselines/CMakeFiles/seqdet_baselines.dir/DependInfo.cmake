
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/esearch/es_engine.cc" "src/baselines/CMakeFiles/seqdet_baselines.dir/esearch/es_engine.cc.o" "gcc" "src/baselines/CMakeFiles/seqdet_baselines.dir/esearch/es_engine.cc.o.d"
  "/root/repo/src/baselines/sase/sase_engine.cc" "src/baselines/CMakeFiles/seqdet_baselines.dir/sase/sase_engine.cc.o" "gcc" "src/baselines/CMakeFiles/seqdet_baselines.dir/sase/sase_engine.cc.o.d"
  "/root/repo/src/baselines/subtree/subtree_index.cc" "src/baselines/CMakeFiles/seqdet_baselines.dir/subtree/subtree_index.cc.o" "gcc" "src/baselines/CMakeFiles/seqdet_baselines.dir/subtree/subtree_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/seqdet_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/log/CMakeFiles/seqdet_log.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/index/CMakeFiles/seqdet_index.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/seqdet_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
