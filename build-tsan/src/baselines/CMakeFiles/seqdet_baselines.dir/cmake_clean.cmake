file(REMOVE_RECURSE
  "CMakeFiles/seqdet_baselines.dir/esearch/es_engine.cc.o"
  "CMakeFiles/seqdet_baselines.dir/esearch/es_engine.cc.o.d"
  "CMakeFiles/seqdet_baselines.dir/sase/sase_engine.cc.o"
  "CMakeFiles/seqdet_baselines.dir/sase/sase_engine.cc.o.d"
  "CMakeFiles/seqdet_baselines.dir/subtree/subtree_index.cc.o"
  "CMakeFiles/seqdet_baselines.dir/subtree/subtree_index.cc.o.d"
  "libseqdet_baselines.a"
  "libseqdet_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqdet_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
