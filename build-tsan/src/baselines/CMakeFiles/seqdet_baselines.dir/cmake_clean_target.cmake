file(REMOVE_RECURSE
  "libseqdet_baselines.a"
)
