file(REMOVE_RECURSE
  "CMakeFiles/seqdet_common.dir/coding.cc.o"
  "CMakeFiles/seqdet_common.dir/coding.cc.o.d"
  "CMakeFiles/seqdet_common.dir/crc32.cc.o"
  "CMakeFiles/seqdet_common.dir/crc32.cc.o.d"
  "CMakeFiles/seqdet_common.dir/histogram.cc.o"
  "CMakeFiles/seqdet_common.dir/histogram.cc.o.d"
  "CMakeFiles/seqdet_common.dir/rng.cc.o"
  "CMakeFiles/seqdet_common.dir/rng.cc.o.d"
  "CMakeFiles/seqdet_common.dir/status.cc.o"
  "CMakeFiles/seqdet_common.dir/status.cc.o.d"
  "CMakeFiles/seqdet_common.dir/strings.cc.o"
  "CMakeFiles/seqdet_common.dir/strings.cc.o.d"
  "CMakeFiles/seqdet_common.dir/thread_pool.cc.o"
  "CMakeFiles/seqdet_common.dir/thread_pool.cc.o.d"
  "libseqdet_common.a"
  "libseqdet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqdet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
