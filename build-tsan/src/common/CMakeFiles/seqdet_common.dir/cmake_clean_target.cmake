file(REMOVE_RECURSE
  "libseqdet_common.a"
)
