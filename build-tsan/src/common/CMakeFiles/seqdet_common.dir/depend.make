# Empty dependencies file for seqdet_common.
# This may be replaced when dependencies are built.
