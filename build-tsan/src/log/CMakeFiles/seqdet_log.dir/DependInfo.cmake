
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/activity_dictionary.cc" "src/log/CMakeFiles/seqdet_log.dir/activity_dictionary.cc.o" "gcc" "src/log/CMakeFiles/seqdet_log.dir/activity_dictionary.cc.o.d"
  "/root/repo/src/log/csv_io.cc" "src/log/CMakeFiles/seqdet_log.dir/csv_io.cc.o" "gcc" "src/log/CMakeFiles/seqdet_log.dir/csv_io.cc.o.d"
  "/root/repo/src/log/event_log.cc" "src/log/CMakeFiles/seqdet_log.dir/event_log.cc.o" "gcc" "src/log/CMakeFiles/seqdet_log.dir/event_log.cc.o.d"
  "/root/repo/src/log/log_statistics.cc" "src/log/CMakeFiles/seqdet_log.dir/log_statistics.cc.o" "gcc" "src/log/CMakeFiles/seqdet_log.dir/log_statistics.cc.o.d"
  "/root/repo/src/log/xes_io.cc" "src/log/CMakeFiles/seqdet_log.dir/xes_io.cc.o" "gcc" "src/log/CMakeFiles/seqdet_log.dir/xes_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/seqdet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
