file(REMOVE_RECURSE
  "CMakeFiles/seqdet_log.dir/activity_dictionary.cc.o"
  "CMakeFiles/seqdet_log.dir/activity_dictionary.cc.o.d"
  "CMakeFiles/seqdet_log.dir/csv_io.cc.o"
  "CMakeFiles/seqdet_log.dir/csv_io.cc.o.d"
  "CMakeFiles/seqdet_log.dir/event_log.cc.o"
  "CMakeFiles/seqdet_log.dir/event_log.cc.o.d"
  "CMakeFiles/seqdet_log.dir/log_statistics.cc.o"
  "CMakeFiles/seqdet_log.dir/log_statistics.cc.o.d"
  "CMakeFiles/seqdet_log.dir/xes_io.cc.o"
  "CMakeFiles/seqdet_log.dir/xes_io.cc.o.d"
  "libseqdet_log.a"
  "libseqdet_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqdet_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
