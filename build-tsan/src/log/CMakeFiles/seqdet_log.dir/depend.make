# Empty dependencies file for seqdet_log.
# This may be replaced when dependencies are built.
