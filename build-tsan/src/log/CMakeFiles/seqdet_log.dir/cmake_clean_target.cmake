file(REMOVE_RECURSE
  "libseqdet_log.a"
)
