file(REMOVE_RECURSE
  "libseqdet_datagen.a"
)
