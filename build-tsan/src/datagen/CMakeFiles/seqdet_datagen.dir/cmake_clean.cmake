file(REMOVE_RECURSE
  "CMakeFiles/seqdet_datagen.dir/dataset_catalog.cc.o"
  "CMakeFiles/seqdet_datagen.dir/dataset_catalog.cc.o.d"
  "CMakeFiles/seqdet_datagen.dir/generators.cc.o"
  "CMakeFiles/seqdet_datagen.dir/generators.cc.o.d"
  "CMakeFiles/seqdet_datagen.dir/pattern_sampler.cc.o"
  "CMakeFiles/seqdet_datagen.dir/pattern_sampler.cc.o.d"
  "CMakeFiles/seqdet_datagen.dir/process_tree.cc.o"
  "CMakeFiles/seqdet_datagen.dir/process_tree.cc.o.d"
  "libseqdet_datagen.a"
  "libseqdet_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqdet_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
