
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/dataset_catalog.cc" "src/datagen/CMakeFiles/seqdet_datagen.dir/dataset_catalog.cc.o" "gcc" "src/datagen/CMakeFiles/seqdet_datagen.dir/dataset_catalog.cc.o.d"
  "/root/repo/src/datagen/generators.cc" "src/datagen/CMakeFiles/seqdet_datagen.dir/generators.cc.o" "gcc" "src/datagen/CMakeFiles/seqdet_datagen.dir/generators.cc.o.d"
  "/root/repo/src/datagen/pattern_sampler.cc" "src/datagen/CMakeFiles/seqdet_datagen.dir/pattern_sampler.cc.o" "gcc" "src/datagen/CMakeFiles/seqdet_datagen.dir/pattern_sampler.cc.o.d"
  "/root/repo/src/datagen/process_tree.cc" "src/datagen/CMakeFiles/seqdet_datagen.dir/process_tree.cc.o" "gcc" "src/datagen/CMakeFiles/seqdet_datagen.dir/process_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/seqdet_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/log/CMakeFiles/seqdet_log.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
