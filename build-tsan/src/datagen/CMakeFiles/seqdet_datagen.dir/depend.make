# Empty dependencies file for seqdet_datagen.
# This may be replaced when dependencies are built.
