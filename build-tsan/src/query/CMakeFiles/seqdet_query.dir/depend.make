# Empty dependencies file for seqdet_query.
# This may be replaced when dependencies are built.
