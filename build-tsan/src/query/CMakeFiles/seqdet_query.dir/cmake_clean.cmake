file(REMOVE_RECURSE
  "CMakeFiles/seqdet_query.dir/pattern.cc.o"
  "CMakeFiles/seqdet_query.dir/pattern.cc.o.d"
  "CMakeFiles/seqdet_query.dir/pattern_parser.cc.o"
  "CMakeFiles/seqdet_query.dir/pattern_parser.cc.o.d"
  "CMakeFiles/seqdet_query.dir/query_processor.cc.o"
  "CMakeFiles/seqdet_query.dir/query_processor.cc.o.d"
  "libseqdet_query.a"
  "libseqdet_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqdet_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
