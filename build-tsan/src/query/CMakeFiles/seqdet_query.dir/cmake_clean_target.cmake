file(REMOVE_RECURSE
  "libseqdet_query.a"
)
