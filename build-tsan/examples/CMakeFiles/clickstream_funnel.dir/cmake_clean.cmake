file(REMOVE_RECURSE
  "CMakeFiles/clickstream_funnel.dir/clickstream_funnel.cpp.o"
  "CMakeFiles/clickstream_funnel.dir/clickstream_funnel.cpp.o.d"
  "clickstream_funnel"
  "clickstream_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
