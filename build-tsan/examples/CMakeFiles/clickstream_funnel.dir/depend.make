# Empty dependencies file for clickstream_funnel.
# This may be replaced when dependencies are built.
