file(REMOVE_RECURSE
  "CMakeFiles/process_monitoring.dir/process_monitoring.cpp.o"
  "CMakeFiles/process_monitoring.dir/process_monitoring.cpp.o.d"
  "process_monitoring"
  "process_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
