# Empty dependencies file for process_monitoring.
# This may be replaced when dependencies are built.
